//! Fig. 16 — communication/computation patterns and their effect on
//! chaining (Case 1–3).

use crate::pipeline::{Mode, TrainingPipeline};
use ccube_dnn::patterns::{case1, case2, case3, Pattern};
use ccube_topology::Seconds;
use std::fmt;

/// One case of Fig. 16, evaluated under C-Cube.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Pattern name.
    pub case: &'static str,
    /// Iteration time under CC.
    pub t_iter: Seconds,
    /// Total bubble time in the chained forward pass.
    pub total_bubble: Seconds,
    /// Gradient turnaround time.
    pub turnaround: Seconds,
    /// `(T_fwd + T_bwd) / T_iter`.
    pub chain_efficiency: f64,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} iter={} bubbles={} turnaround={} eff={:.3}",
            self.case, self.t_iter, self.total_bubble, self.turnaround, self.chain_efficiency
        )
    }
}

/// Evaluates the three canonical cases on an 8-rank DGX-1-like machine.
pub fn run() -> Vec<Row> {
    [case1(), case2(), case3()].iter().map(evaluate).collect()
}

/// Evaluates one pattern under C-Cube.
pub fn evaluate(pattern: &Pattern) -> Row {
    let pipeline = TrainingPipeline::from_pattern(pattern, 8);
    let report = pipeline.iteration(Mode::CCube);
    Row {
        case: pattern.name(),
        t_iter: report.t_iter,
        total_bubble: report.total_bubble,
        turnaround: report.turnaround,
        chain_efficiency: report.normalized_perf,
    }
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("case,t_iter_us,total_bubble_us,turnaround_us,chain_efficiency\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{:.4}\n",
            r.case,
            r.t_iter.as_micros(),
            r.total_bubble.as_micros(),
            r.turnaround.as_micros(),
            r.chain_efficiency
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_chains_best() {
        let rows = run();
        let c1 = &rows[0];
        assert_eq!(c1.case, "case1_cnn_like");
        for other in &rows[1..] {
            assert!(
                c1.chain_efficiency >= other.chain_efficiency,
                "{} beats case1",
                other.case
            );
        }
    }

    #[test]
    fn case2_shows_bubbles() {
        // Fig. 16 Case 2: when compute grows with depth, forward layers
        // outrun the arriving gradients and strictly more bubble time
        // appears than in the CNN-shaped Case 1.
        let rows = run();
        let c1 = &rows[0];
        let c2 = &rows[1];
        assert!(
            c2.total_bubble.as_secs_f64() > c1.total_bubble.as_secs_f64() * 1.5,
            "case1 {} vs case2 {}",
            c1.total_bubble,
            c2.total_bubble
        );
        assert!(c2.t_iter > c1.t_iter);
    }

    #[test]
    fn case3_pushes_back_the_turnaround() {
        // Fig. 16 Case 3: heavy early communication delays the first
        // usable layer — the gradient turnaround of the *first layer*
        // (not of the first chunk) moves back, stretching the iteration.
        let rows = run();
        let c1 = &rows[0];
        let c3 = &rows[2];
        assert!(c3.t_iter > c1.t_iter, "{} vs {}", c1.t_iter, c3.t_iter);
        assert!(c3.total_bubble > c1.total_bubble);
    }
}
