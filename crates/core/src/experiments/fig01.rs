//! Fig. 1 — AllReduce as a fraction of execution time (MLPerf suite).

use ccube_dnn::workloads::{mlperf_suite, FrameworkEnv};
use std::fmt;

/// One bar of Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload name.
    pub workload: &'static str,
    /// AllReduce time / total execution time.
    pub ratio: f64,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<24} {:>5.1}%", self.workload, self.ratio * 100.0)
    }
}

/// Computes the AllReduce share for every workload of the suite under
/// the default framework environment (8-GPU DGX-1, NCCL ring through
/// PyTorch-style bucketing).
pub fn run() -> Vec<Row> {
    run_with(&FrameworkEnv::default())
}

/// Computes the shares under an explicit environment.
pub fn run_with(env: &FrameworkEnv) -> Vec<Row> {
    mlperf_suite()
        .iter()
        .map(|w| Row {
            workload: w.name(),
            ratio: w.allreduce_ratio(env),
        })
        .collect()
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("workload,allreduce_ratio\n");
    for r in rows {
        out.push_str(&format!("{},{:.4}\n", r.workload, r.ratio));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rows = run();
        assert_eq!(rows.len(), 7);
        let max = rows.iter().map(|r| r.ratio).fold(0.0, f64::max);
        let min = rows.iter().map(|r| r.ratio).fold(1.0, f64::min);
        // "up to 60%" at the top, "approximately 10%" at the bottom.
        assert!((0.5..0.72).contains(&max), "max {max}");
        assert!((0.04..0.2).contains(&min), "min {min}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&run());
        assert!(csv.starts_with("workload,"));
        assert_eq!(csv.lines().count(), 8);
    }
}
