//! Schedule-policy search over the sweep executor.
//!
//! The ROADMAP's "what schedule should this machine run?" question,
//! answered by brute force: for each physical topology, sweep the
//! schedule knobs the runtime controls — chunk count, tree shape, and
//! channel arbitration policy — through the discrete-event simulator,
//! and report the configuration with the lowest AllReduce makespan.
//! Ties break on total queue wait (the [`ccube_sim::SimStats`]
//! congestion signal: a schedule that wins without queueing generalizes
//! better than one that wins by saturating a contended channel), then on
//! grid order, so the winner is deterministic.
//!
//! Every grid point is independent, so the search runs on
//! [`ccube_sim::sweep`] and is bit-identical at any worker count.

use ccube_collectives::{
    tree_allreduce, BinaryTree, Chunking, DoubleBinaryTree, Embedding, Overlap,
};
use ccube_sim::{simulate, Arbitration, SimOptions};
use ccube_topology::{dgx1, hierarchical, ByteSize, Seconds, Topology};
use std::fmt;

/// Tree shapes the search considers.
const SHAPES: [&str; 2] = ["single-tree", "double-tree"];

/// Chunk counts the search considers (even, so double trees split the
/// chunks evenly between the tree pair).
const CHUNKS: [usize; 5] = [4, 8, 16, 32, 64];

/// One evaluated point of the policy search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRow {
    /// Topology name (`dgx1` or `hier16`).
    pub topology: &'static str,
    /// `single-tree` or `double-tree`.
    pub shape: &'static str,
    /// Channel arbitration policy.
    pub arbitration: Arbitration,
    /// Chunk count.
    pub k: usize,
    /// Simulated AllReduce makespan.
    pub makespan: Seconds,
    /// Total queue wait across channels — the congestion signal.
    pub queue_wait: Seconds,
    /// Whether this is the best schedule for its topology.
    pub best: bool,
}

impl fmt::Display for SearchRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:<11} {:<13} K={:<4} makespan={} wait={}{}",
            self.topology,
            self.shape,
            arbitration_name(self.arbitration),
            self.k,
            self.makespan,
            self.queue_wait,
            if self.best { "  <- best" } else { "" }
        )
    }
}

/// Stable CSV label for an arbitration policy.
pub fn arbitration_name(a: Arbitration) -> &'static str {
    match a {
        Arbitration::FifoHol => "fifo-hol",
        Arbitration::ChunkPriority => "chunk-priority",
    }
}

/// One grid point: which topology, which knob settings.
#[derive(Debug, Clone, Copy)]
struct Point {
    topology: &'static str,
    shape: &'static str,
    arbitration: Arbitration,
    k: usize,
}

fn evaluate(topo: &Topology, ranks: usize, point: &Point, n: ByteSize) -> (Seconds, Seconds) {
    let chunking = Chunking::even(n, point.k);
    let schedule = if point.shape == "single-tree" {
        let tree = BinaryTree::inorder(ranks).expect("valid rank count");
        tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        )
    } else {
        let dt = DoubleBinaryTree::new(ranks).expect("valid rank count");
        tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast)
    };
    let emb = match (point.topology, point.shape) {
        ("dgx1", "double-tree") => Embedding::dgx1_double_tree(topo, &schedule),
        ("dgx1", _) => Embedding::identity(topo, &schedule),
        _ => Embedding::nic(topo, &schedule),
    }
    .expect("embeddable");
    // The search only reads timings and counters, so it takes the
    // trace-off fast path.
    let opts = SimOptions {
        arbitration: point.arbitration,
        ..SimOptions::default()
    }
    .without_trace();
    let report = simulate(topo, &schedule, &emb, &opts).expect("simulates");
    (report.makespan(), report.stats().total_queue_wait())
}

/// Runs the search serially (64 MiB message).
pub fn run() -> Vec<SearchRow> {
    run_with_threads(1)
}

/// Runs the full search grid — topology × tree shape × arbitration ×
/// chunk count — on `threads` sweep workers and marks the best schedule
/// per topology. Deterministic at any worker count.
pub fn run_with_threads(threads: usize) -> Vec<SearchRow> {
    let n = ByteSize::mib(64);
    let machines: [(&'static str, usize, Topology); 2] =
        [("dgx1", 8, dgx1()), ("hier16", 16, hierarchical(16))];

    let mut points = Vec::new();
    for (name, _, _) in &machines {
        for shape in SHAPES {
            for arbitration in [Arbitration::FifoHol, Arbitration::ChunkPriority] {
                for k in CHUNKS {
                    points.push(Point {
                        topology: name,
                        shape,
                        arbitration,
                        k,
                    });
                }
            }
        }
    }

    let mut rows = ccube_sim::sweep(&points, threads, |_, point| {
        let (_, ranks, topo) = machines
            .iter()
            .find(|(name, _, _)| *name == point.topology)
            .expect("known topology");
        let (makespan, queue_wait) = evaluate(topo, *ranks, point, n);
        SearchRow {
            topology: point.topology,
            shape: point.shape,
            arbitration: point.arbitration,
            k: point.k,
            makespan,
            queue_wait,
            best: false,
        }
    });

    // Winner per topology: lowest makespan, ties by congestion, then by
    // grid order (the index the sweep already preserves).
    for (name, _, _) in &machines {
        let best = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.topology == *name)
            .min_by(|(_, a), (_, b)| (a.makespan, a.queue_wait).cmp(&(b.makespan, b.queue_wait)))
            .map(|(i, _)| i)
            .expect("topology has rows");
        rows[best].best = true;
    }
    rows
}

/// The winning row for a topology.
pub fn best_for<'a>(rows: &'a [SearchRow], topology: &str) -> &'a SearchRow {
    rows.iter()
        .find(|r| r.best && r.topology == topology)
        .expect("topology searched")
}

/// Renders search rows as CSV.
pub fn to_csv(rows: &[SearchRow]) -> String {
    let mut out = String::from("topology,shape,arbitration,k,makespan_us,queue_wait_us,best\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.2},{:.2},{}\n",
            r.topology,
            r.shape,
            arbitration_name(r.arbitration),
            r.k,
            r.makespan.as_micros(),
            r.queue_wait.as_micros(),
            r.best
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_covers_the_grid_and_crowns_one_winner_per_topology() {
        let rows = run();
        // 2 topologies x 2 shapes x 2 arbitrations x 5 chunk counts.
        assert_eq!(rows.len(), 2 * 2 * 2 * CHUNKS.len());
        for topo in ["dgx1", "hier16"] {
            let winners: Vec<_> = rows
                .iter()
                .filter(|r| r.topology == topo && r.best)
                .collect();
            assert_eq!(winners.len(), 1, "{topo}: {} winners", winners.len());
            // The winner really is the makespan minimum.
            let min = rows
                .iter()
                .filter(|r| r.topology == topo)
                .map(|r| r.makespan)
                .min()
                .unwrap();
            assert_eq!(winners[0].makespan, min);
        }
    }

    #[test]
    fn search_is_deterministic_across_worker_counts() {
        let serial = run_with_threads(1);
        for threads in [2, 8] {
            assert_eq!(run_with_threads(threads), serial);
        }
    }

    #[test]
    fn double_tree_beats_single_tree_on_dgx1() {
        // The paper's core claim, recovered by the search: on the DGX-1
        // the conflict-free double-tree embedding outperforms a single
        // tree at the same chunk count.
        let rows = run();
        let best = best_for(&rows, "dgx1");
        assert_eq!(best.shape, "double-tree");
    }
}
