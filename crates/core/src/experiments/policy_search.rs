//! Schedule-policy search over the sweep executor.
//!
//! The ROADMAP's "what schedule should this machine run?" question,
//! answered by brute force: for each physical topology, sweep the
//! schedule knobs the runtime controls — chunk count, tree shape, and
//! channel arbitration policy — through the discrete-event simulator,
//! and report the configuration with the lowest AllReduce makespan.
//! Ties break on total queue wait (the [`ccube_sim::SimStats`]
//! congestion signal: a schedule that wins without queueing generalizes
//! better than one that wins by saturating a contended channel), then on
//! grid order, so the winner is deterministic.
//!
//! Every grid point is independent, so the search runs on
//! [`ccube_sim::sweep()`] and is bit-identical at any worker count.
//!
//! Before any simulation is spent, every candidate passes through the
//! static analyzer ([`ccube_collectives::analyze`]): the grid includes a
//! *naive-placement* class (the double tree dropped onto the DGX-1 with
//! the identity mapping, which collides on the doubled NVLinks), and the
//! analyzer prunes it with a channel-conflict error instead of wasting a
//! DES run on a provably conflicted schedule. [`run_full`] reports the
//! pruned candidates alongside the surviving rows.

use ccube_collectives::analyze::{self, AnalyzeOptions};
use ccube_collectives::{
    tree_allreduce, BinaryTree, Chunking, DoubleBinaryTree, Embedding, Overlap, Schedule,
};
use ccube_runtime::protocol::DEFAULT_TREE_MAILBOX_CAPACITY;
use ccube_sim::{simulate, Arbitration, SimOptions};
use ccube_topology::{dgx1, hierarchical, ByteSize, Seconds, Topology};
use std::fmt;

/// Tree shapes the search considers.
const SHAPES: [&str; 2] = ["single-tree", "double-tree"];

/// Chunk counts the search considers (even, so double trees split the
/// chunks evenly between the tree pair).
const CHUNKS: [usize; 5] = [4, 8, 16, 32, 64];

/// One evaluated point of the policy search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRow {
    /// Topology name (`dgx1` or `hier16`).
    pub topology: &'static str,
    /// `single-tree` or `double-tree`.
    pub shape: &'static str,
    /// Channel arbitration policy.
    pub arbitration: Arbitration,
    /// Chunk count.
    pub k: usize,
    /// Simulated AllReduce makespan.
    pub makespan: Seconds,
    /// Total queue wait across channels — the congestion signal.
    pub queue_wait: Seconds,
    /// Whether this is the best schedule for its topology.
    pub best: bool,
}

impl fmt::Display for SearchRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:<11} {:<13} K={:<4} makespan={} wait={}{}",
            self.topology,
            self.shape,
            arbitration_name(self.arbitration),
            self.k,
            self.makespan,
            self.queue_wait,
            if self.best { "  <- best" } else { "" }
        )
    }
}

/// Stable CSV label for an arbitration policy.
pub fn arbitration_name(a: Arbitration) -> &'static str {
    match a {
        Arbitration::FifoHol => "fifo-hol",
        Arbitration::ChunkPriority => "chunk-priority",
    }
}

/// One grid point: which topology, which knob settings.
#[derive(Debug, Clone, Copy)]
struct Point {
    topology: &'static str,
    shape: &'static str,
    /// `aware` = the topology-matched placement the experiments ship;
    /// `naive` = the identity placement of the same schedule (invalid on
    /// the DGX-1 for the double tree — kept in the grid so the static
    /// gate has something real to prune).
    placement: &'static str,
    arbitration: Arbitration,
    k: usize,
}

fn build_candidate(
    topo: &Topology,
    ranks: usize,
    point: &Point,
    n: ByteSize,
) -> (Schedule, Embedding) {
    let chunking = Chunking::even(n, point.k);
    let schedule = if point.shape == "single-tree" {
        let tree = BinaryTree::inorder(ranks).expect("valid rank count");
        tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        )
    } else {
        let dt = DoubleBinaryTree::new(ranks).expect("valid rank count");
        tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast)
    };
    let emb = match (point.topology, point.shape, point.placement) {
        (_, _, "naive") | ("dgx1", "single-tree", _) => Embedding::identity(topo, &schedule),
        ("dgx1", "double-tree", _) => Embedding::dgx1_double_tree(topo, &schedule),
        _ => Embedding::nic(topo, &schedule),
    }
    .expect("embeddable");
    (schedule, emb)
}

fn evaluate(topo: &Topology, ranks: usize, point: &Point, n: ByteSize) -> (Seconds, Seconds) {
    let (schedule, emb) = build_candidate(topo, ranks, point, n);
    // The search only reads timings and counters, so it takes the
    // trace-off fast path.
    let opts = SimOptions {
        arbitration: point.arbitration,
        ..SimOptions::default()
    }
    .without_trace();
    let report = simulate(topo, &schedule, &emb, &opts).expect("simulates");
    (report.makespan(), report.stats().total_queue_wait())
}

/// A candidate the static gate rejected before simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedCandidate {
    /// Topology name.
    pub topology: &'static str,
    /// Tree shape.
    pub shape: &'static str,
    /// Placement class (`naive` for the identity placement).
    pub placement: &'static str,
    /// Channel arbitration policy.
    pub arbitration: Arbitration,
    /// Chunk count.
    pub k: usize,
    /// Number of error-severity diagnostics.
    pub errors: usize,
    /// The first error's lint code (e.g. `CC009`).
    pub code: String,
}

impl fmt::Display for PrunedCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:<11} {:<6} {:<13} K={:<4} pruned: {} error(s), first {}",
            self.topology,
            self.shape,
            self.placement,
            arbitration_name(self.arbitration),
            self.k,
            self.errors,
            self.code
        )
    }
}

/// The full search result: surviving rows plus what the gate pruned.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Simulated rows (candidates that linted clean), winners marked.
    pub rows: Vec<SearchRow>,
    /// Candidates rejected by the static analyzer, in grid order.
    pub pruned: Vec<PrunedCandidate>,
}

/// Runs the search serially (64 MiB message).
pub fn run() -> Vec<SearchRow> {
    run_with_threads(1)
}

/// Runs the full search grid — topology × tree shape × arbitration ×
/// chunk count — on `threads` sweep workers and marks the best schedule
/// per topology. Deterministic at any worker count.
pub fn run_with_threads(threads: usize) -> Vec<SearchRow> {
    run_full(threads).rows
}

/// The machines the search covers.
fn machines() -> [(&'static str, usize, Topology); 2] {
    [("dgx1", 8, dgx1()), ("hier16", 16, hierarchical(16))]
}

/// The full candidate grid, in stable grid order.
fn grid_points(machines: &[(&'static str, usize, Topology)]) -> Vec<Point> {
    let mut points = Vec::new();
    for (name, _, _) in machines {
        for shape in SHAPES {
            for arbitration in [Arbitration::FifoHol, Arbitration::ChunkPriority] {
                for k in CHUNKS {
                    points.push(Point {
                        topology: name,
                        shape,
                        placement: "aware",
                        arbitration,
                        k,
                    });
                }
            }
        }
    }
    // The naive-placement class: the double tree dropped onto the DGX-1
    // with the identity mapping (the paper's doubled-NVLink hazard).
    for arbitration in [Arbitration::FifoHol, Arbitration::ChunkPriority] {
        for k in CHUNKS {
            points.push(Point {
                topology: "dgx1",
                shape: "double-tree",
                placement: "naive",
                arbitration,
                k,
            });
        }
    }
    points
}

/// Runs the static analyzer gate over `points`, splitting them into
/// survivors (simulable) and pruned candidates, both in grid order.
fn static_gate(
    machines: &[(&'static str, usize, Topology)],
    points: Vec<Point>,
    n: ByteSize,
) -> (Vec<Point>, Vec<PrunedCandidate>) {
    // The static gate, in grid order (serial: linting is cheap relative
    // to a DES run, and order determinism keeps the log stable).
    let lint_opts = AnalyzeOptions {
        mailbox_capacity: Some(DEFAULT_TREE_MAILBOX_CAPACITY),
        ..AnalyzeOptions::default()
    };
    let mut survivors = Vec::with_capacity(points.len());
    let mut pruned = Vec::new();
    for point in points {
        let (_, ranks, topo) = machines
            .iter()
            .find(|(name, _, _)| *name == point.topology)
            .expect("known topology");
        let (schedule, emb) = build_candidate(topo, *ranks, &point, n);
        let report = analyze::analyze_embedded(&schedule, &emb, topo, &lint_opts);
        if report.is_clean() {
            survivors.push(point);
        } else {
            let first = report.errors().next().expect("unclean report has an error");
            pruned.push(PrunedCandidate {
                topology: point.topology,
                shape: point.shape,
                placement: point.placement,
                arbitration: point.arbitration,
                k: point.k,
                errors: report.errors().count(),
                code: first.code.as_str().to_string(),
            });
        }
    }
    (survivors, pruned)
}

/// Marks the winner per topology: lowest makespan, ties by congestion,
/// then by grid order (the index the rows already preserve).
fn mark_winners(rows: &mut [SearchRow], machines: &[(&'static str, usize, Topology)]) {
    for (name, _, _) in machines {
        let best = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.topology == *name)
            .min_by(|(_, a), (_, b)| (a.makespan, a.queue_wait).cmp(&(b.makespan, b.queue_wait)))
            .map(|(i, _)| i)
            .expect("topology has rows");
        rows[best].best = true;
    }
}

/// [`run_with_threads`] plus the static pre-simulation gate's log: the
/// grid is extended with the naive-placement candidate class, every
/// candidate is linted first, and candidates with error-severity
/// diagnostics are pruned (never simulated) and reported.
pub fn run_full(threads: usize) -> SearchOutcome {
    let n = ByteSize::mib(64);
    let machines = machines();
    let (survivors, pruned) = static_gate(&machines, grid_points(&machines), n);

    let mut rows = ccube_sim::sweep(&survivors, threads, |_, point| {
        let (_, ranks, topo) = machines
            .iter()
            .find(|(name, _, _)| *name == point.topology)
            .expect("known topology");
        let (makespan, queue_wait) = evaluate(topo, *ranks, point, n);
        SearchRow {
            topology: point.topology,
            shape: point.shape,
            arbitration: point.arbitration,
            k: point.k,
            makespan,
            queue_wait,
            best: false,
        }
    });
    mark_winners(&mut rows, &machines);
    SearchOutcome { rows, pruned }
}

/// A candidate the certified lower bound skipped (never simulated): its
/// bound already exceeded an incumbent's *simulated* makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSkipped {
    /// Topology name.
    pub topology: &'static str,
    /// Tree shape.
    pub shape: &'static str,
    /// Channel arbitration policy.
    pub arbitration: Arbitration,
    /// Chunk count.
    pub k: usize,
    /// The certified lower bound that proved the skip safe.
    pub bound: Seconds,
}

impl fmt::Display for BoundSkipped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:<11} {:<13} K={:<4} skipped: bound {} exceeds incumbent",
            self.topology,
            self.shape,
            arbitration_name(self.arbitration),
            self.k,
            self.bound,
        )
    }
}

/// The bound-pruned search result.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedOutcome {
    /// Simulated rows in grid order, winners marked. Each row is
    /// byte-identical to the corresponding [`run_full`] row; skipped
    /// candidates are absent.
    pub rows: Vec<SearchRow>,
    /// Candidates rejected by the static analyzer, in grid order
    /// (identical to [`run_full`]'s).
    pub pruned: Vec<PrunedCandidate>,
    /// Candidates the lower bound skipped, in grid order.
    pub skipped: Vec<BoundSkipped>,
    /// Candidates that survived the static gate (the simulation count
    /// [`run_full`] would have paid).
    pub candidates: usize,
    /// Candidates actually simulated (`candidates - skipped.len()`).
    pub simulated: usize,
}

/// [`run_full`] with certified-lower-bound pruning: per topology, the
/// static-gate survivors are simulated in ascending order of their
/// [`makespan_lower_bound`](ccube_collectives::makespan_lower_bound),
/// and a candidate whose bound strictly exceeds the best makespan
/// simulated so far is skipped outright.
///
/// The skip is provably winner-preserving: a skipped candidate's true
/// makespan is at least its bound (the property-tested certificate),
/// which strictly exceeds the incumbent, which is at least the final
/// minimum — so the winner, its tie-break, and every simulated row are
/// identical to [`run_full`]'s, only fewer DES runs are paid.
pub fn run_bounded() -> BoundedOutcome {
    let n = ByteSize::mib(64);
    let machines = machines();
    let (survivors, pruned) = static_gate(&machines, grid_points(&machines), n);
    let candidates = survivors.len();

    // The certified bound per survivor. The default `LinkTiming` is the
    // timing `evaluate`'s default `SimOptions` lowers with, so the
    // certificate matches the simulation it prunes.
    let bounds: Vec<Seconds> = survivors
        .iter()
        .map(|point| {
            let (_, ranks, topo) = machines
                .iter()
                .find(|(name, _, _)| *name == point.topology)
                .expect("known topology");
            let (schedule, emb) = build_candidate(topo, *ranks, point, n);
            ccube_collectives::makespan_lower_bound(
                &schedule,
                &emb,
                topo,
                &ccube_collectives::LinkTiming::default(),
            )
            .expect("gate survivor lowers")
        })
        .collect();

    let mut results: Vec<Option<SearchRow>> = vec![None; survivors.len()];
    let mut skipped_at: Vec<usize> = Vec::new();
    for (name, ranks, topo) in &machines {
        // Bound-ascending order (ties by grid index) maximizes the
        // chance of meeting the eventual winner early.
        let mut order: Vec<usize> = (0..survivors.len())
            .filter(|&i| survivors[i].topology == *name)
            .collect();
        order.sort_by_key(|&i| (bounds[i], i));
        let mut incumbent: Option<Seconds> = None;
        for i in order {
            if incumbent.is_some_and(|inc| bounds[i] > inc) {
                skipped_at.push(i);
                continue;
            }
            let (makespan, queue_wait) = evaluate(topo, *ranks, &survivors[i], n);
            incumbent = Some(incumbent.map_or(makespan, |inc| inc.min(makespan)));
            results[i] = Some(SearchRow {
                topology: survivors[i].topology,
                shape: survivors[i].shape,
                arbitration: survivors[i].arbitration,
                k: survivors[i].k,
                makespan,
                queue_wait,
                best: false,
            });
        }
    }

    let mut rows: Vec<SearchRow> = results.into_iter().flatten().collect();
    mark_winners(&mut rows, &machines);
    skipped_at.sort_unstable();
    let skipped: Vec<BoundSkipped> = skipped_at
        .into_iter()
        .map(|i| BoundSkipped {
            topology: survivors[i].topology,
            shape: survivors[i].shape,
            arbitration: survivors[i].arbitration,
            k: survivors[i].k,
            bound: bounds[i],
        })
        .collect();
    let simulated = candidates - skipped.len();
    BoundedOutcome {
        rows,
        pruned,
        skipped,
        candidates,
        simulated,
    }
}

/// The winning row for a topology.
pub fn best_for<'a>(rows: &'a [SearchRow], topology: &str) -> &'a SearchRow {
    rows.iter()
        .find(|r| r.best && r.topology == topology)
        .expect("topology searched")
}

/// Renders search rows as CSV.
pub fn to_csv(rows: &[SearchRow]) -> String {
    let mut out = String::from("topology,shape,arbitration,k,makespan_us,queue_wait_us,best\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.2},{:.2},{}\n",
            r.topology,
            r.shape,
            arbitration_name(r.arbitration),
            r.k,
            r.makespan.as_micros(),
            r.queue_wait.as_micros(),
            r.best
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_covers_the_grid_and_crowns_one_winner_per_topology() {
        let rows = run();
        // 2 topologies x 2 shapes x 2 arbitrations x 5 chunk counts.
        assert_eq!(rows.len(), 2 * 2 * 2 * CHUNKS.len());
        for topo in ["dgx1", "hier16"] {
            let winners: Vec<_> = rows
                .iter()
                .filter(|r| r.topology == topo && r.best)
                .collect();
            assert_eq!(winners.len(), 1, "{topo}: {} winners", winners.len());
            // The winner really is the makespan minimum.
            let min = rows
                .iter()
                .filter(|r| r.topology == topo)
                .map(|r| r.makespan)
                .min()
                .unwrap();
            assert_eq!(winners[0].makespan, min);
        }
    }

    #[test]
    fn search_is_deterministic_across_worker_counts() {
        let serial = run_with_threads(1);
        for threads in [2, 8] {
            assert_eq!(run_with_threads(threads), serial);
        }
    }

    #[test]
    fn naive_placement_class_is_pruned_before_simulation() {
        let outcome = run_full(1);
        // Every naive-placement candidate (2 arbitrations x |CHUNKS|)
        // fails the static gate with the doubled-NVLink channel conflict;
        // none reaches the simulator.
        assert_eq!(outcome.pruned.len(), 2 * CHUNKS.len());
        for p in &outcome.pruned {
            assert_eq!(p.placement, "naive");
            assert_eq!(p.code, "CC009", "{p}");
            assert!(p.errors > 0);
        }
        // The surviving rows are exactly the original grid.
        assert_eq!(outcome.rows, run_with_threads(1));
    }

    #[test]
    fn bounded_search_matches_full_while_simulating_fewer() {
        let full = run_full(1);
        let bounded = run_bounded();
        // The static gate is shared: identical pruning log.
        assert_eq!(bounded.pruned, full.pruned);
        assert_eq!(bounded.candidates, full.rows.len());
        // The bound must actually pay for itself.
        assert!(
            bounded.simulated < bounded.candidates,
            "bound pruning skipped nothing ({} of {})",
            bounded.simulated,
            bounded.candidates
        );
        assert_eq!(bounded.rows.len(), bounded.simulated);
        assert_eq!(
            bounded.simulated + bounded.skipped.len(),
            bounded.candidates
        );
        // Every simulated row is byte-identical to run_full's row for
        // the same candidate — best flags included.
        let full_csv = to_csv(&full.rows);
        for r in &bounded.rows {
            let twin = full
                .rows
                .iter()
                .find(|f| {
                    f.topology == r.topology
                        && f.shape == r.shape
                        && f.arbitration == r.arbitration
                        && f.k == r.k
                })
                .expect("bounded row exists in the full grid");
            assert_eq!(r, twin);
        }
        for line in to_csv(&bounded.rows).lines().skip(1) {
            assert!(full_csv.contains(line), "CSV line diverged: {line}");
        }
        // Winners are unchanged.
        for topo in ["dgx1", "hier16"] {
            assert_eq!(best_for(&bounded.rows, topo), best_for(&full.rows, topo));
        }
        // The certificate held on everything it skipped: the skipped
        // candidate's full-grid makespan really is above its bound.
        for s in &bounded.skipped {
            let twin = full
                .rows
                .iter()
                .find(|f| {
                    f.topology == s.topology
                        && f.shape == s.shape
                        && f.arbitration == s.arbitration
                        && f.k == s.k
                })
                .expect("skipped row exists in the full grid");
            assert!(twin.makespan >= s.bound, "{s}: sim {}", twin.makespan);
            assert!(!twin.best, "bound pruning skipped the winner: {s}");
        }
    }

    #[test]
    fn double_tree_beats_single_tree_on_dgx1() {
        // The paper's core claim, recovered by the search: on the DGX-1
        // the conflict-free double-tree embedding outperforms a single
        // tree at the same chunk count.
        let rows = run();
        let best = best_for(&rows, "dgx1");
        assert_eq!(best.shape, "double-tree");
    }
}
