//! Schedule-policy search over the sweep executor.
//!
//! The ROADMAP's "what schedule should this machine run?" question,
//! answered by brute force: for each physical topology, sweep the
//! schedule knobs the runtime controls — chunk count, tree shape, and
//! channel arbitration policy — through the discrete-event simulator,
//! and report the configuration with the lowest AllReduce makespan.
//! Ties break on total queue wait (the [`ccube_sim::SimStats`]
//! congestion signal: a schedule that wins without queueing generalizes
//! better than one that wins by saturating a contended channel), then on
//! grid order, so the winner is deterministic.
//!
//! Every grid point is independent, so the search runs on
//! [`ccube_sim::sweep()`] and is bit-identical at any worker count.
//!
//! Before any simulation is spent, every candidate passes through the
//! static analyzer ([`ccube_collectives::analyze`]): the grid includes a
//! *naive-placement* class (the double tree dropped onto the DGX-1 with
//! the identity mapping, which collides on the doubled NVLinks), and the
//! analyzer prunes it with a channel-conflict error instead of wasting a
//! DES run on a provably conflicted schedule. [`run_full`] reports the
//! pruned candidates alongside the surviving rows.

use ccube_collectives::analyze::{self, AnalyzeOptions};
use ccube_collectives::{
    tree_allreduce, BinaryTree, Chunking, DoubleBinaryTree, Embedding, Overlap, Schedule,
};
use ccube_runtime::protocol::DEFAULT_TREE_MAILBOX_CAPACITY;
use ccube_sim::{simulate, Arbitration, SimOptions};
use ccube_topology::{dgx1, hierarchical, ByteSize, Seconds, Topology};
use std::fmt;

/// Tree shapes the search considers.
const SHAPES: [&str; 2] = ["single-tree", "double-tree"];

/// Chunk counts the search considers (even, so double trees split the
/// chunks evenly between the tree pair).
const CHUNKS: [usize; 5] = [4, 8, 16, 32, 64];

/// One evaluated point of the policy search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRow {
    /// Topology name (`dgx1` or `hier16`).
    pub topology: &'static str,
    /// `single-tree` or `double-tree`.
    pub shape: &'static str,
    /// Channel arbitration policy.
    pub arbitration: Arbitration,
    /// Chunk count.
    pub k: usize,
    /// Simulated AllReduce makespan.
    pub makespan: Seconds,
    /// Total queue wait across channels — the congestion signal.
    pub queue_wait: Seconds,
    /// Whether this is the best schedule for its topology.
    pub best: bool,
}

impl fmt::Display for SearchRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:<11} {:<13} K={:<4} makespan={} wait={}{}",
            self.topology,
            self.shape,
            arbitration_name(self.arbitration),
            self.k,
            self.makespan,
            self.queue_wait,
            if self.best { "  <- best" } else { "" }
        )
    }
}

/// Stable CSV label for an arbitration policy.
pub fn arbitration_name(a: Arbitration) -> &'static str {
    match a {
        Arbitration::FifoHol => "fifo-hol",
        Arbitration::ChunkPriority => "chunk-priority",
    }
}

/// One grid point: which topology, which knob settings.
#[derive(Debug, Clone, Copy)]
struct Point {
    topology: &'static str,
    shape: &'static str,
    /// `aware` = the topology-matched placement the experiments ship;
    /// `naive` = the identity placement of the same schedule (invalid on
    /// the DGX-1 for the double tree — kept in the grid so the static
    /// gate has something real to prune).
    placement: &'static str,
    arbitration: Arbitration,
    k: usize,
}

fn build_candidate(
    topo: &Topology,
    ranks: usize,
    point: &Point,
    n: ByteSize,
) -> (Schedule, Embedding) {
    let chunking = Chunking::even(n, point.k);
    let schedule = if point.shape == "single-tree" {
        let tree = BinaryTree::inorder(ranks).expect("valid rank count");
        tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        )
    } else {
        let dt = DoubleBinaryTree::new(ranks).expect("valid rank count");
        tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast)
    };
    let emb = match (point.topology, point.shape, point.placement) {
        (_, _, "naive") | ("dgx1", "single-tree", _) => Embedding::identity(topo, &schedule),
        ("dgx1", "double-tree", _) => Embedding::dgx1_double_tree(topo, &schedule),
        _ => Embedding::nic(topo, &schedule),
    }
    .expect("embeddable");
    (schedule, emb)
}

fn evaluate(topo: &Topology, ranks: usize, point: &Point, n: ByteSize) -> (Seconds, Seconds) {
    let (schedule, emb) = build_candidate(topo, ranks, point, n);
    // The search only reads timings and counters, so it takes the
    // trace-off fast path.
    let opts = SimOptions {
        arbitration: point.arbitration,
        ..SimOptions::default()
    }
    .without_trace();
    let report = simulate(topo, &schedule, &emb, &opts).expect("simulates");
    (report.makespan(), report.stats().total_queue_wait())
}

/// A candidate the static gate rejected before simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedCandidate {
    /// Topology name.
    pub topology: &'static str,
    /// Tree shape.
    pub shape: &'static str,
    /// Placement class (`naive` for the identity placement).
    pub placement: &'static str,
    /// Channel arbitration policy.
    pub arbitration: Arbitration,
    /// Chunk count.
    pub k: usize,
    /// Number of error-severity diagnostics.
    pub errors: usize,
    /// The first error's lint code (e.g. `CC009`).
    pub code: String,
}

impl fmt::Display for PrunedCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:<11} {:<6} {:<13} K={:<4} pruned: {} error(s), first {}",
            self.topology,
            self.shape,
            self.placement,
            arbitration_name(self.arbitration),
            self.k,
            self.errors,
            self.code
        )
    }
}

/// The full search result: surviving rows plus what the gate pruned.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Simulated rows (candidates that linted clean), winners marked.
    pub rows: Vec<SearchRow>,
    /// Candidates rejected by the static analyzer, in grid order.
    pub pruned: Vec<PrunedCandidate>,
}

/// Runs the search serially (64 MiB message).
pub fn run() -> Vec<SearchRow> {
    run_with_threads(1)
}

/// Runs the full search grid — topology × tree shape × arbitration ×
/// chunk count — on `threads` sweep workers and marks the best schedule
/// per topology. Deterministic at any worker count.
pub fn run_with_threads(threads: usize) -> Vec<SearchRow> {
    run_full(threads).rows
}

/// [`run_with_threads`] plus the static pre-simulation gate's log: the
/// grid is extended with the naive-placement candidate class, every
/// candidate is linted first, and candidates with error-severity
/// diagnostics are pruned (never simulated) and reported.
pub fn run_full(threads: usize) -> SearchOutcome {
    let n = ByteSize::mib(64);
    let machines: [(&'static str, usize, Topology); 2] =
        [("dgx1", 8, dgx1()), ("hier16", 16, hierarchical(16))];

    let mut points = Vec::new();
    for (name, _, _) in &machines {
        for shape in SHAPES {
            for arbitration in [Arbitration::FifoHol, Arbitration::ChunkPriority] {
                for k in CHUNKS {
                    points.push(Point {
                        topology: name,
                        shape,
                        placement: "aware",
                        arbitration,
                        k,
                    });
                }
            }
        }
    }
    // The naive-placement class: the double tree dropped onto the DGX-1
    // with the identity mapping (the paper's doubled-NVLink hazard).
    for arbitration in [Arbitration::FifoHol, Arbitration::ChunkPriority] {
        for k in CHUNKS {
            points.push(Point {
                topology: "dgx1",
                shape: "double-tree",
                placement: "naive",
                arbitration,
                k,
            });
        }
    }

    // The static gate, in grid order (serial: linting is cheap relative
    // to a DES run, and order determinism keeps the log stable).
    let lint_opts = AnalyzeOptions {
        mailbox_capacity: Some(DEFAULT_TREE_MAILBOX_CAPACITY),
        ..AnalyzeOptions::default()
    };
    let mut survivors = Vec::with_capacity(points.len());
    let mut pruned = Vec::new();
    for point in points {
        let (_, ranks, topo) = machines
            .iter()
            .find(|(name, _, _)| *name == point.topology)
            .expect("known topology");
        let (schedule, emb) = build_candidate(topo, *ranks, &point, n);
        let report = analyze::analyze_embedded(&schedule, &emb, topo, &lint_opts);
        if report.is_clean() {
            survivors.push(point);
        } else {
            let first = report.errors().next().expect("unclean report has an error");
            pruned.push(PrunedCandidate {
                topology: point.topology,
                shape: point.shape,
                placement: point.placement,
                arbitration: point.arbitration,
                k: point.k,
                errors: report.errors().count(),
                code: first.code.as_str().to_string(),
            });
        }
    }

    let mut rows = ccube_sim::sweep(&survivors, threads, |_, point| {
        let (_, ranks, topo) = machines
            .iter()
            .find(|(name, _, _)| *name == point.topology)
            .expect("known topology");
        let (makespan, queue_wait) = evaluate(topo, *ranks, point, n);
        SearchRow {
            topology: point.topology,
            shape: point.shape,
            arbitration: point.arbitration,
            k: point.k,
            makespan,
            queue_wait,
            best: false,
        }
    });

    // Winner per topology: lowest makespan, ties by congestion, then by
    // grid order (the index the sweep already preserves).
    for (name, _, _) in &machines {
        let best = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.topology == *name)
            .min_by(|(_, a), (_, b)| (a.makespan, a.queue_wait).cmp(&(b.makespan, b.queue_wait)))
            .map(|(i, _)| i)
            .expect("topology has rows");
        rows[best].best = true;
    }
    SearchOutcome { rows, pruned }
}

/// The winning row for a topology.
pub fn best_for<'a>(rows: &'a [SearchRow], topology: &str) -> &'a SearchRow {
    rows.iter()
        .find(|r| r.best && r.topology == topology)
        .expect("topology searched")
}

/// Renders search rows as CSV.
pub fn to_csv(rows: &[SearchRow]) -> String {
    let mut out = String::from("topology,shape,arbitration,k,makespan_us,queue_wait_us,best\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.2},{:.2},{}\n",
            r.topology,
            r.shape,
            arbitration_name(r.arbitration),
            r.k,
            r.makespan.as_micros(),
            r.queue_wait.as_micros(),
            r.best
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_covers_the_grid_and_crowns_one_winner_per_topology() {
        let rows = run();
        // 2 topologies x 2 shapes x 2 arbitrations x 5 chunk counts.
        assert_eq!(rows.len(), 2 * 2 * 2 * CHUNKS.len());
        for topo in ["dgx1", "hier16"] {
            let winners: Vec<_> = rows
                .iter()
                .filter(|r| r.topology == topo && r.best)
                .collect();
            assert_eq!(winners.len(), 1, "{topo}: {} winners", winners.len());
            // The winner really is the makespan minimum.
            let min = rows
                .iter()
                .filter(|r| r.topology == topo)
                .map(|r| r.makespan)
                .min()
                .unwrap();
            assert_eq!(winners[0].makespan, min);
        }
    }

    #[test]
    fn search_is_deterministic_across_worker_counts() {
        let serial = run_with_threads(1);
        for threads in [2, 8] {
            assert_eq!(run_with_threads(threads), serial);
        }
    }

    #[test]
    fn naive_placement_class_is_pruned_before_simulation() {
        let outcome = run_full(1);
        // Every naive-placement candidate (2 arbitrations x |CHUNKS|)
        // fails the static gate with the doubled-NVLink channel conflict;
        // none reaches the simulator.
        assert_eq!(outcome.pruned.len(), 2 * CHUNKS.len());
        for p in &outcome.pruned {
            assert_eq!(p.placement, "naive");
            assert_eq!(p.code, "CC009", "{p}");
            assert!(p.errors > 0);
        }
        // The surviving rows are exactly the original grid.
        assert_eq!(outcome.rows, run_with_threads(1));
    }

    #[test]
    fn double_tree_beats_single_tree_on_dgx1() {
        // The paper's core claim, recovered by the search: on the DGX-1
        // the conflict-free double-tree embedding outperforms a single
        // tree at the same chunk count.
        let rows = run();
        let best = best_for(&rows, "dgx1");
        assert_eq!(best.shape, "double-tree");
    }
}
