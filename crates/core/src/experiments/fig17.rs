//! Fig. 17 — per-layer parameter size vs computation time in ResNet-50.

use ccube_dnn::{resnet50, ComputeModel};
use ccube_topology::{ByteSize, Seconds};
use std::fmt;

/// One layer of Fig. 17.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Layer index (input side first).
    pub index: usize,
    /// Layer name.
    pub name: String,
    /// Gradient bytes of the layer.
    pub param_bytes: ByteSize,
    /// Forward computation time at the given batch.
    pub fwd_time: Seconds,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<3} {:<12} {:>12} {:>12}",
            self.index,
            self.name,
            format!("{}", self.param_bytes),
            format!("{}", self.fwd_time)
        )
    }
}

/// Produces the per-layer profile of ResNet-50 at the given batch size.
pub fn run(batch: usize) -> Vec<Row> {
    let net = resnet50();
    let compute = ComputeModel::v100();
    net.layers()
        .iter()
        .enumerate()
        .map(|(index, layer)| Row {
            index,
            name: layer.name().to_string(),
            param_bytes: layer.param_bytes(),
            fwd_time: layer.fwd_time(batch, &compute),
        })
        .collect()
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("index,name,param_bytes,fwd_time_us\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.3}\n",
            r.index,
            r.name,
            r.param_bytes.as_u64(),
            r.fwd_time.as_micros()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pearson correlation of (index, value).
    fn trend(values: impl Iterator<Item = f64>) -> f64 {
        let v: Vec<f64> = values.collect();
        let n = v.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = v.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var_x = 0.0;
        let mut var_y = 0.0;
        for (i, &y) in v.iter().enumerate() {
            let dx = i as f64 - mean_x;
            let dy = y - mean_y;
            cov += dx * dy;
            var_x += dx * dx;
            var_y += dy * dy;
        }
        cov / (var_x.sqrt() * var_y.sqrt())
    }

    #[test]
    fn params_grow_with_depth() {
        let rows = run(64);
        let corr = trend(rows.iter().map(|r| r.param_bytes.as_u64() as f64));
        assert!(corr > 0.4, "parameter-size trend {corr}");
    }

    #[test]
    fn compute_shrinks_relative_to_params_with_depth() {
        // The paper's takeaway: compute-to-communication ratio falls with
        // layer index, which is what makes Case-1 chaining work.
        let rows = run(64);
        let ratio_corr = trend(
            rows.iter()
                .map(|r| r.fwd_time.as_secs_f64() / r.param_bytes.as_u64().max(1) as f64),
        );
        assert!(ratio_corr < -0.2, "compute/comm trend {ratio_corr}");
    }

    #[test]
    fn one_row_per_layer() {
        assert_eq!(run(64).len(), 54);
    }
}
