//! Extension — resilience of the paper's configurations under
//! escalating fault severity.
//!
//! The paper's static detour routes and conflict-free embeddings assume
//! every NVLink the schedule was planned around stays healthy. This
//! study measures what happens when that assumption breaks: the five
//! execution modes (B, C1, R on both fabrics; the C2/CC co-simulations
//! on the DGX-1) run under fault plans sampled at escalating severity
//! from [`FaultModel::severity`] — link flaps, degraded-bandwidth
//! windows and straggler GPUs — and report the makespan inflation,
//! re-routes taken, and downtime absorbed.
//!
//! The interesting asymmetry: on the DGX-1, a downed NVLink re-routes
//! through the detour/host-bridge machinery and the run *finishes*
//! (slower); on the flat hierarchical fabric there is no alternative
//! path, so traffic stalls until repair — and a permanently-severed NIC
//! is a typed [`SimError::Unroutable`](ccube_sim::SimError).
//!
//! Every point is seeded through [`ccube_sim::sweep_seeded`]: the same
//! seed yields byte-identical CSVs at any worker count.

use crate::pipeline::TrainingPipeline;
use crate::systemjob::build_iteration_job;
use ccube_collectives::{
    ring_allreduce, tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap, Schedule,
};
use ccube_sim::{
    diff_to_html, simulate_faulted, simulate_system_faulted, FabricSpec, FaultModel, FaultPlan,
    LaneLabels, NetworkModel, SimError, SimOptions, SimRng, SystemJob, SystemReport, UplinkPolicy,
};
use ccube_topology::{dgx1, hierarchical, ByteSize, Seconds, Topology};
use std::fmt;

/// Default seed of the sampled fault plans (`ccube faults --seed N`
/// overrides it).
pub const DEFAULT_SEED: u64 = 0xC3;

/// Highest severity level of the default grid (inclusive; level 0 is
/// the healthy fabric).
pub const MAX_SEVERITY: u32 = 3;

/// One cell of the resilience study.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Fabric name (`dgx1` or `hier16`).
    pub topology: &'static str,
    /// Execution mode (`B`, `C1`, `R`, `C2`, `CC`).
    pub mode: &'static str,
    /// Fault severity level (0 = healthy).
    pub severity: u32,
    /// `ok` or `unroutable`.
    pub status: &'static str,
    /// Faulted makespan (zero when unroutable).
    pub makespan: Seconds,
    /// Faulted / healthy makespan (zero when unroutable).
    pub slowdown: f64,
    /// Fault events that activated during the run.
    pub faults_injected: u64,
    /// Transfers moved to a surviving route after a link-down.
    pub reroutes: u64,
    /// Total time at least one channel ran degraded.
    pub time_degraded: Seconds,
    /// Summed per-channel downtime.
    pub downtime: Seconds,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:<3} sev={} {:<10} slowdown={:.3} faults={} reroutes={}",
            self.topology,
            self.mode,
            self.severity,
            self.status,
            self.slowdown,
            self.faults_injected,
            self.reroutes
        )
    }
}

/// One (fabric, mode, severity) grid point.
#[derive(Debug, Clone, Copy)]
struct Point {
    topology: &'static str,
    mode: &'static str,
    severity: u32,
}

/// The AllReduce payload of the communication-only modes.
fn message() -> ByteSize {
    ByteSize::mib(16)
}

fn tree_schedule(ranks: usize, overlap: Overlap) -> Schedule {
    let dt = DoubleBinaryTree::new(ranks).expect("valid rank count");
    tree_allreduce(dt.trees(), &Chunking::even(message(), 16), overlap)
}

fn compute_less(schedule: Schedule) -> SystemJob {
    SystemJob {
        schedule,
        compute: vec![],
        transfer_gates: vec![],
    }
}

/// Builds the workload of one grid point: topology, job, embedding and
/// simulator options.
fn workload(topology: &'static str, mode: &'static str) -> (Topology, SystemJob, SimOptions) {
    let (topo, ranks, opts) = match topology {
        "dgx1" => (dgx1(), 8, SimOptions::default()),
        "hier16" => (hierarchical(16), 16, SimOptions::scale_out()),
        other => panic!("unknown topology {other}"),
    };
    let job = match mode {
        "B" => compute_less(tree_schedule(ranks, Overlap::None)),
        "C1" => compute_less(tree_schedule(ranks, Overlap::ReductionBroadcast)),
        "R" => compute_less(ring_allreduce(ranks, message())),
        "C2" | "CC" => {
            let pipeline = TrainingPipeline::dgx1(&ccube_dnn::resnet50(), 32);
            let overlap = if mode == "CC" {
                Overlap::ReductionBroadcast
            } else {
                Overlap::None
            };
            build_iteration_job(&pipeline, overlap, &[1.0; 8])
        }
        other => panic!("unknown mode {other}"),
    };
    (topo, job, opts)
}

fn embed(topology: &str, mode: &str, topo: &Topology, schedule: &Schedule) -> Embedding {
    match (topology, mode) {
        ("hier16", _) => Embedding::nic(topo, schedule).expect("embeds"),
        (_, "R") => Embedding::identity(topo, schedule).expect("embeds"),
        _ => Embedding::dgx1_double_tree(topo, schedule).expect("embeds"),
    }
}

/// The default grid: severities `0..=MAX_SEVERITY` of every mode —
/// B/C1/R on both fabrics, the C2/CC co-simulations on the DGX-1 only
/// (the hierarchical model has no per-node compute pipeline).
fn grid() -> Vec<Point> {
    let mut points = Vec::new();
    for severity in 0..=MAX_SEVERITY {
        for mode in ["B", "C1", "R", "C2", "CC"] {
            points.push(Point {
                topology: "dgx1",
                mode,
                severity,
            });
        }
        for mode in ["B", "C1", "R"] {
            points.push(Point {
                topology: "hier16",
                mode,
                severity,
            });
        }
    }
    points
}

/// Runs the full grid serially with the default seed.
pub fn run() -> Vec<Row> {
    run_with(DEFAULT_SEED, 1)
}

/// Runs the grid from `seed` fanned out over `threads` workers. Each
/// grid point is one [`ccube_sim::sweep_seeded`] point: its fault plan
/// is sampled from the point's forked RNG stream, so the rows are
/// byte-identical at any worker count and under replay of the seed.
pub fn run_with(seed: u64, threads: usize) -> Vec<Row> {
    run_with_network(seed, threads, NetworkModel::ChannelApprox)
}

/// [`run_with`] under an explicit network model (`ccube faults --fabric
/// switch` runs the grid on the componentized switch fabric).
pub fn run_with_network(seed: u64, threads: usize, network: NetworkModel) -> Vec<Row> {
    run_grid(&grid(), seed, threads, network)
}

/// The smallest faulty slice of the grid — severity 1 on both fabrics'
/// C1 — for CI smoke runs (`ccube faults --smoke`).
pub fn run_smoke() -> Vec<Row> {
    run_smoke_network(NetworkModel::ChannelApprox)
}

/// [`run_smoke`] under an explicit network model.
pub fn run_smoke_network(network: NetworkModel) -> Vec<Row> {
    let points: Vec<Point> = grid()
        .into_iter()
        .filter(|p| p.severity == 1 && p.mode == "C1")
        .collect();
    run_grid(&points, DEFAULT_SEED, 1, network)
}

fn run_grid(points: &[Point], seed: u64, threads: usize, network: NetworkModel) -> Vec<Row> {
    ccube_sim::sweep_seeded(points, seed, threads, |_, p, rng| cell(p, &rng, network))
}

/// Evaluates one grid point: a healthy baseline fixes the fault horizon
/// and the slowdown denominator, then the sampled plan runs on the same
/// job. Everything the cell needs is derived point-locally (baseline
/// included), so points stay independent under work stealing.
fn cell(p: &Point, rng: &SimRng, network: NetworkModel) -> Row {
    let (topo, job, opts) = workload(p.topology, p.mode);
    let opts = opts.with_network(network);
    let emb = embed(p.topology, p.mode, &topo, &job.schedule);
    let healthy = simulate_system_faulted(&topo, &job, &emb, &opts, &FaultPlan::empty())
        .expect("healthy run simulates");
    let model = FaultModel::severity(p.severity, healthy.makespan);
    let plan = FaultPlan::sample(&model, &topo, rng);
    match simulate_system_faulted(&topo, &job, &emb, &opts, &plan) {
        Ok(report) => row_ok(p, &healthy, &report),
        Err(SimError::Unroutable { .. }) => Row {
            topology: p.topology,
            mode: p.mode,
            severity: p.severity,
            status: "unroutable",
            makespan: Seconds::ZERO,
            slowdown: 0.0,
            faults_injected: 0,
            reroutes: 0,
            time_degraded: Seconds::ZERO,
            downtime: Seconds::ZERO,
        },
        Err(e) => panic!("{}/{} sev {}: {e}", p.topology, p.mode, p.severity),
    }
}

fn row_ok(p: &Point, healthy: &SystemReport, report: &SystemReport) -> Row {
    let downtime = report
        .stats
        .channel_downtime
        .iter()
        .fold(Seconds::ZERO, |acc, &d| acc + d);
    Row {
        topology: p.topology,
        mode: p.mode,
        severity: p.severity,
        status: "ok",
        makespan: report.makespan,
        slowdown: report.makespan / healthy.makespan,
        faults_injected: report.stats.faults_injected,
        reroutes: report.stats.reroutes_taken,
        time_degraded: report.stats.time_degraded,
        downtime,
    }
}

/// The demo trace behind `ccube trace`: the DGX-1 C1 double tree
/// (16 MiB in 16 chunks) under a severity-2 fault plan sampled from
/// `seed`. The trace shows transfers, queue waits, detours, re-routes,
/// failovers and fault intervals; the CLI renders it as CSV, Chrome
/// JSON, or the self-contained HTML viewer.
pub fn demo_trace(seed: u64, network: NetworkModel) -> Result<SystemReport, SimError> {
    let topo = dgx1();
    let s = tree_schedule(8, Overlap::ReductionBroadcast);
    let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
    let opts = SimOptions::default().with_network(network);
    let healthy =
        simulate_faulted(&topo, &s, &e, &opts, &FaultPlan::empty()).expect("healthy run simulates");
    let model = FaultModel::severity(2, healthy.makespan);
    let plan = FaultPlan::sample(&model, &topo, &SimRng::new(seed));
    simulate_faulted(&topo, &s, &e, &opts, &plan)
}

/// Viewer lane labels matching [`demo_trace`] under `network`: channel
/// lanes under the approximation, [`ccube_topology::FabricGraph`] port
/// labels under the switch fabric.
pub fn demo_labels(title: impl Into<String>, network: &NetworkModel) -> LaneLabels {
    LaneLabels::for_network(title, &dgx1(), network)
}

/// One cell of the fabric-failover study: the C1 collective on a
/// radix-4 spine/leaf fabric over `hierarchical(16)`, under the *same*
/// seeded uplink-outage plan, across uplink counts and steering
/// policies.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRow {
    /// Uplink slots per leaf.
    pub uplinks: usize,
    /// Steering policy across the slots.
    pub policy: UplinkPolicy,
    /// `ok` or `unroutable`.
    pub status: &'static str,
    /// Faulted makespan (zero when unroutable).
    pub makespan: Seconds,
    /// Faulted / own-healthy makespan — the cross-fabric comparable
    /// (zero when unroutable).
    pub slowdown: f64,
    /// Adaptive uplink reroutes the engine recorded.
    pub failovers: u64,
    /// Fault events that activated during the run.
    pub faults_injected: u64,
}

impl fmt::Display for FabricRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={} {:<12} {:<10} slowdown={:.3} failovers={}",
            self.uplinks,
            self.policy.label(),
            self.status,
            self.slowdown,
            self.failovers
        )
    }
}

/// The radix-4 spine/leaf spec of the fabric study: total uplink
/// capacity held constant across slot counts, one spine per slot.
fn fabric_spec(uplinks: usize, policy: UplinkPolicy) -> FabricSpec {
    FabricSpec {
        radix: Some(4),
        spines: uplinks,
        uplinks,
        uplink_policy: policy,
        ..FabricSpec::default()
    }
}

/// The fabric study's grid: uplink counts × steering policies.
fn fabric_grid() -> Vec<(usize, UplinkPolicy)> {
    let mut points = Vec::new();
    for uplinks in [1usize, 2] {
        for policy in [
            UplinkPolicy::Hash,
            UplinkPolicy::LeastQueued,
            UplinkPolicy::Failover,
        ] {
            points.push((uplinks, policy));
        }
    }
    points
}

/// Runs the fabric-failover study with the default seed, serially.
pub fn run_fabric() -> Vec<FabricRow> {
    run_fabric_with(DEFAULT_SEED, 1)
}

/// Runs the fabric-failover study from `seed` over `threads` workers.
///
/// Every cell replays the **same** seeded plan — uplink outages sampled
/// with [`FaultPlan::sample_uplinks`] at one slot per leaf, so every
/// event targets slot 0 and the plan is valid on both the single- and
/// the multi-uplink fabric. The plan's horizon and rates derive from
/// the single-uplink healthy baseline (recomputed point-locally, so
/// cells stay independent under work stealing); slowdown is each cell's
/// makespan over its *own* healthy baseline. Rows are byte-identical at
/// any worker count.
pub fn run_fabric_with(seed: u64, threads: usize) -> Vec<FabricRow> {
    let points = fabric_grid();
    ccube_sim::sweep_seeded(&points, seed, threads, |_, &(uplinks, policy), _| {
        fabric_cell(uplinks, policy, seed)
    })
}

/// The fabric study's workload and network options: the C1 collective
/// on `hierarchical(16)` over the radix-4 spine/leaf fabric.
fn fabric_workload(
    uplinks: usize,
    policy: UplinkPolicy,
) -> (Topology, SystemJob, Embedding, SimOptions) {
    let topo = hierarchical(16);
    let job = compute_less(tree_schedule(16, Overlap::ReductionBroadcast));
    let emb = Embedding::nic(&topo, &job.schedule).expect("embeds");
    let opts = SimOptions::scale_out()
        .with_network(NetworkModel::SwitchFabric(fabric_spec(uplinks, policy)));
    (topo, job, emb, opts)
}

/// The study's shared seeded outage plan: slot-0 uplink windows sampled
/// against the single-uplink reference horizon, so the identical plan is
/// valid on every cell's fabric.
fn fabric_outage_plan(seed: u64) -> FaultPlan {
    let (topo, job, emb, opts) = fabric_workload(1, UplinkPolicy::Hash);
    let reference = simulate_system_faulted(&topo, &job, &emb, &opts, &FaultPlan::empty())
        .expect("reference baseline simulates");
    FaultPlan::sample_uplinks(
        4,
        1,
        reference.makespan * 0.5,
        reference.makespan * 0.25,
        reference.makespan,
        &SimRng::new(seed),
    )
}

fn fabric_cell(uplinks: usize, policy: UplinkPolicy, seed: u64) -> FabricRow {
    // The shared fault horizon comes from the single-uplink reference,
    // so every cell samples the identical plan from the same stream.
    let plan = fabric_outage_plan(seed);
    let (topo, job, emb, opts) = fabric_workload(uplinks, policy);
    let healthy = simulate_system_faulted(&topo, &job, &emb, &opts, &FaultPlan::empty())
        .expect("healthy run simulates");
    match simulate_system_faulted(&topo, &job, &emb, &opts, &plan) {
        Ok(report) => FabricRow {
            uplinks,
            policy,
            status: "ok",
            makespan: report.makespan,
            slowdown: report.makespan / healthy.makespan,
            failovers: report.stats.failovers,
            faults_injected: report.stats.faults_injected,
        },
        Err(SimError::Unroutable { .. }) => FabricRow {
            uplinks,
            policy,
            status: "unroutable",
            makespan: Seconds::ZERO,
            slowdown: 0.0,
            failovers: 0,
            faults_injected: 0,
        },
        Err(e) => panic!("fabric cell k={uplinks} {}: {e}", policy.label()),
    }
}

/// Renders the fabric-failover figure as a side-by-side HTML diff
/// viewer: the k=1 and k=2 `failover`-policy cells under the **same**
/// seeded slot-0 uplink outage (`ccube faults --html <out>`). The left
/// pane shows traffic stalling through the outage window with nowhere
/// to go; the right pane shows the adaptive failover absorbing it —
/// the study's headline recovery, explorable per port lane.
pub fn fabric_demo_html(seed: u64) -> String {
    let plan = fabric_outage_plan(seed);
    let run = |uplinks: usize| {
        let (topo, job, emb, opts) = fabric_workload(uplinks, UplinkPolicy::Failover);
        let report = simulate_system_faulted(&topo, &job, &emb, &opts, &plan)
            .expect("failover fabric absorbs the slot-0 outage");
        let labels = LaneLabels::for_network(
            format!("k={uplinks} failover, seed {seed}"),
            &topo,
            &NetworkModel::SwitchFabric(fabric_spec(uplinks, UplinkPolicy::Failover)),
        );
        (report, labels)
    };
    let (left, ll) = run(1);
    let (right, rl) = run(2);
    diff_to_html((&left.trace, &ll), (&right.trace, &rl))
}

/// Renders fabric-study rows as CSV.
pub fn fabric_to_csv(rows: &[FabricRow]) -> String {
    let mut out =
        String::from("uplinks,policy,status,makespan_us,slowdown,failovers,faults_injected\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.4},{},{}\n",
            r.uplinks,
            r.policy.label(),
            r.status,
            r.makespan.as_micros(),
            r.slowdown,
            r.failovers,
            r.faults_injected
        ));
    }
    out
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from(
        "topology,mode,severity,status,makespan_us,slowdown,faults_injected,reroutes,time_degraded_us,downtime_us\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.4},{},{},{:.3},{:.3}\n",
            r.topology,
            r.mode,
            r.severity,
            r.status,
            r.makespan.as_micros(),
            r.slowdown,
            r.faults_injected,
            r.reroutes,
            r.time_degraded.as_micros(),
            r.downtime.as_micros()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_zero_is_the_healthy_baseline() {
        let rows: Vec<Row> = run_grid(
            &grid()
                .into_iter()
                .filter(|p| p.severity == 0)
                .collect::<Vec<_>>(),
            DEFAULT_SEED,
            1,
            NetworkModel::ChannelApprox,
        );
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r.status, "ok");
            assert!((r.slowdown - 1.0).abs() < 1e-12, "{r}");
            assert_eq!(r.faults_injected, 0);
            assert_eq!(r.reroutes, 0);
            assert!(r.time_degraded.is_zero() && r.downtime.is_zero());
        }
    }

    #[test]
    fn faults_never_speed_up_a_surviving_run_much_and_some_bite() {
        let rows = run();
        assert_eq!(rows.len(), (MAX_SEVERITY as usize + 1) * 8);
        let mut injected_anywhere = false;
        for r in &rows {
            if r.status != "ok" {
                assert_eq!(r.slowdown, 0.0);
                continue;
            }
            // Re-routing can shift contention, but a faulted run beating
            // the healthy baseline by >0.1% would mean broken accounting.
            assert!(r.slowdown > 0.999, "{r}");
            injected_anywhere |= r.faults_injected > 0;
        }
        assert!(injected_anywhere, "no severity level injected any fault");
        // The headline asymmetry: the DGX-1 re-routes somewhere in the
        // faulty rows.
        assert!(
            rows.iter().any(|r| r.topology == "dgx1" && r.reroutes > 0),
            "no dgx1 run ever re-routed"
        );
        // NIC paths never re-route.
        assert!(rows
            .iter()
            .filter(|r| r.topology == "hier16")
            .all(|r| r.reroutes == 0));
    }

    #[test]
    fn smoke_slice_is_small_and_faulty() {
        let rows = run_smoke();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.severity == 1 && r.mode == "C1"));
    }

    #[test]
    fn fabric_study_shows_failover_recovery() {
        let rows = run_fabric();
        assert_eq!(rows.len(), 6);
        let find = |uplinks: usize, policy: UplinkPolicy| {
            rows.iter()
                .find(|r| r.uplinks == uplinks && r.policy == policy)
                .expect("grid covers the cell")
        };
        // The same seeded plan stalls the single-uplink fabric but is
        // absorbed by the 2-uplink failover fabric: at least one
        // recorded failover reroute and strictly lower slowdown.
        let single = find(1, UplinkPolicy::Failover);
        let multi = find(2, UplinkPolicy::Failover);
        assert_eq!(single.status, "ok");
        assert_eq!(multi.status, "ok");
        assert_eq!(single.failovers, 0, "one slot has nowhere to fail over");
        assert!(
            multi.failovers >= 1,
            "2-uplink failover must reroute: {multi}"
        );
        assert!(
            multi.slowdown < single.slowdown,
            "failover must recover: {multi} vs {single}"
        );
        // With one uplink every policy degenerates to hash striping.
        assert_eq!(single.slowdown, find(1, UplinkPolicy::Hash).slowdown);
        // Faults bite everywhere (the plan's windows overlap traffic).
        assert!(rows.iter().all(|r| r.faults_injected >= 1));
    }

    #[test]
    fn fabric_study_replays_byte_identically_across_workers() {
        let a = fabric_to_csv(&run_fabric_with(DEFAULT_SEED, 1));
        let b = fabric_to_csv(&run_fabric_with(DEFAULT_SEED, 2));
        assert_eq!(a, b, "worker count must not change the rows");
    }

    #[test]
    fn replaying_the_seed_reproduces_the_rows() {
        let a = run_with(DEFAULT_SEED, 1);
        let b = run_with(DEFAULT_SEED, 1);
        assert_eq!(a, b);
        let other = run_with(DEFAULT_SEED + 1, 1);
        assert_ne!(a, other, "a different seed should sample different plans");
    }
}
