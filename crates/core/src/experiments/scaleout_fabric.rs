//! Extension — the componentized switch fabric vs the NIC-channel
//! approximation, across scale-out topologies.
//!
//! The historical engines price the scale-out interconnect as ideal
//! per-NIC channels behind an invisible, non-blocking switch
//! ([`NetworkModel::ChannelApprox`]). The componentized
//! [`NetworkModel::SwitchFabric`] makes the switch explicit — NIC and
//! switch agents, per-port queues, leaf radix, uplink oversubscription —
//! so this study asks the question the approximation cannot: *when does
//! the switch itself start to matter?*
//!
//! Three drivers, each a golden-fixtured CSV:
//!
//! * [`fabric_study`] — R and C1 on `hier16`, `nvswitch16` and
//!   `torus4x4` under the approximation, the passthrough fabric
//!   (which must agree to 1e-9 — the equivalence contract the
//!   simulator's test suite asserts), and a split fabric with four
//!   endpoints per leaf and 4:1 oversubscribed uplinks.
//! * [`nvswitch_sweep`] — the Fig. 14-style (P, N) sweep on the
//!   NVSwitch-class fabric, under both models plus an 8-per-leaf 2:1
//!   oversubscribed variant; closes the ROADMAP item on NVSwitch
//!   sweeps.
//! * [`torus_sweep`] — the same sweep shape on 2-D tori, where the
//!   derived fabric is degenerate (direct links, no switch): both
//!   models must produce the same timings, and the CSV records that
//!   end-to-end.
//!
//! Every row is a pure function of its grid point, so the CSVs are
//! byte-identical at any [`ccube_sim::sweep()`] worker count.

use super::fig14;
use ccube_collectives::{
    ring_allreduce, ring_allreduce_multi, tree_allreduce, Chunking, DoubleBinaryTree, Embedding,
    Overlap, Rank, Schedule,
};
use ccube_sim::{simulate, FabricSpec, NetworkModel, SimOptions, SimReport};
use ccube_topology::{hierarchical, nvswitch, torus2d, ByteSize, Seconds, Topology};
use std::fmt;

/// One cell of the fabric model comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRow {
    /// Topology name (`hier16`, `nvswitch16`, `torus4x4`).
    pub topology: &'static str,
    /// Network model label (`approx`, `switch`, `switch_x4`).
    pub model: &'static str,
    /// Algorithm label (`R` or `C1`).
    pub algorithm: &'static str,
    /// AllReduce makespan.
    pub makespan: Seconds,
    /// Gradient turnaround time.
    pub turnaround: Seconds,
    /// Summed busy time of the fabric's uplink ports (zero under the
    /// approximation and on switchless topologies).
    pub uplink_busy: Seconds,
    /// Kernel events processed.
    pub events: u64,
}

impl fmt::Display for FabricRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<9} {:<3} makespan={} turnaround={} uplink_busy={}",
            self.topology,
            self.model,
            self.algorithm,
            self.makespan,
            self.turnaround,
            self.uplink_busy
        )
    }
}

/// The three network models the study compares.
fn models() -> [(&'static str, NetworkModel); 3] {
    [
        ("approx", NetworkModel::ChannelApprox),
        (
            "switch",
            NetworkModel::SwitchFabric(FabricSpec::passthrough()),
        ),
        (
            "switch_x4",
            NetworkModel::SwitchFabric(FabricSpec {
                radix: Some(4),
                oversubscription: 4.0,
                ..FabricSpec::passthrough()
            }),
        ),
    ]
}

/// Whether `name` selects a NIC-attached topology (embedded through the
/// host NICs with scale-out options) or a direct-link one (identity
/// embedding, default options).
fn is_nic_topology(name: &str) -> bool {
    name != "torus4x4"
}

fn study_topology(name: &str) -> Topology {
    match name {
        "hier16" => hierarchical(16),
        "nvswitch16" => nvswitch(16),
        "torus4x4" => torus2d(4, 4),
        other => unreachable!("unknown study topology {other}"),
    }
}

fn study_schedule(algorithm: &str, n: ByteSize) -> Schedule {
    match algorithm {
        "R" => ring_allreduce(16, n),
        "C1" => c1_schedule(16, n),
        // Binary trees don't embed on the torus (edges span more hops
        // than the router bridges), so its second series is the
        // torus-native dual ring.
        "R2" => torus_dual_ring(4, 4, n),
        other => unreachable!("unknown algorithm {other}"),
    }
}

/// The algorithm pair a topology supports.
fn study_algorithms(topology: &str) -> [&'static str; 2] {
    if is_nic_topology(topology) {
        ["R", "C1"]
    } else {
        ["R", "R2"]
    }
}

fn run_point(topology: &str, model: NetworkModel, algorithm: &str) -> (SimReport, usize) {
    let topo = study_topology(topology);
    let n = ByteSize::mib(64);
    let s = study_schedule(algorithm, n);
    let (emb, opts) = if is_nic_topology(topology) {
        (
            Embedding::nic(&topo, &s).expect("nic embedding"),
            SimOptions::scale_out(),
        )
    } else {
        (
            Embedding::identity(&topo, &s).expect("identity embedding"),
            SimOptions::default(),
        )
    };
    let report = simulate(&topo, &s, &emb, &opts.with_network(model)).expect("simulates");
    (report, topo.channels().len())
}

/// Sums the busy time of ports beyond the per-channel endpoints — the
/// uplinks the split fabric adds.
fn uplink_busy(report: &SimReport, num_channels: usize) -> Seconds {
    report
        .stats()
        .port_busy
        .iter()
        .skip(num_channels)
        .fold(Seconds::ZERO, |acc, &b| acc + b)
}

/// Runs the fabric model comparison serially.
pub fn fabric_study() -> Vec<FabricRow> {
    fabric_study_with_threads(1)
}

/// [`fabric_study`] fanned out over `threads` sweep workers.
pub fn fabric_study_with_threads(threads: usize) -> Vec<FabricRow> {
    let mut points = Vec::new();
    for topology in ["hier16", "nvswitch16", "torus4x4"] {
        for (model_name, model) in models() {
            for algorithm in study_algorithms(topology) {
                points.push((topology, model_name, model, algorithm));
            }
        }
    }
    ccube_sim::sweep(
        &points,
        threads,
        |_, &(topology, model_name, model, algorithm)| {
            let (report, num_channels) = run_point(topology, model, algorithm);
            FabricRow {
                topology,
                model: model_name,
                algorithm,
                makespan: report.makespan(),
                turnaround: report.turnaround(),
                uplink_busy: uplink_busy(&report, num_channels),
                events: report.stats().events_processed,
            }
        },
    )
}

/// Renders the fabric study as CSV.
pub fn fabric_to_csv(rows: &[FabricRow]) -> String {
    let mut out =
        String::from("topology,model,algorithm,makespan_us,turnaround_us,uplink_busy_us,events\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.3},{:.3},{}\n",
            r.topology,
            r.model,
            r.algorithm,
            r.makespan.as_micros(),
            r.turnaround.as_micros(),
            r.uplink_busy.as_micros(),
            r.events
        ));
    }
    out
}

/// One cell of the NVSwitch / torus sweeps: one algorithm under one
/// network model, with its makespan and its speedup over the plain ring
/// at the same grid point (the Fig. 14a series shape).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Topology label (`nvswitch8`, `torus4x4`, …).
    pub topology: String,
    /// Number of participating GPUs.
    pub p: usize,
    /// Message size.
    pub n: ByteSize,
    /// Network model label.
    pub model: &'static str,
    /// Algorithm label (`R`, `C1`, `R2`).
    pub algorithm: &'static str,
    /// AllReduce makespan.
    pub makespan: Seconds,
    /// Plain-ring makespan divided by this makespan (1.0 for the ring
    /// itself; the Fig. 14a speedup series).
    pub speedup_vs_ring: f64,
}

impl fmt::Display for SweepRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} P={:<3} N={} {:<9} {:<3} makespan={} ({:.3}x vs ring)",
            self.topology,
            self.p,
            self.n,
            self.model,
            self.algorithm,
            self.makespan,
            self.speedup_vs_ring
        )
    }
}

/// Runs ring + one alternative algorithm at a grid point and emits the
/// paired rows.
fn sweep_cells(
    topology: &str,
    topo: &Topology,
    p: usize,
    n: ByteSize,
    (model_name, model): (&'static str, NetworkModel),
    nic_attached: bool,
    alt: (&'static str, Schedule),
) -> Vec<SweepRow> {
    let sim = |s: &Schedule| -> Seconds {
        let (emb, opts) = if nic_attached {
            (
                Embedding::nic(topo, s).expect("nic embedding"),
                SimOptions::scale_out(),
            )
        } else {
            (
                Embedding::identity(topo, s).expect("identity embedding"),
                SimOptions::default(),
            )
        };
        simulate(topo, s, &emb, &opts.with_network(model))
            .expect("simulates")
            .makespan()
    };
    let t_ring = sim(&ring_allreduce(p, n));
    let (alt_name, alt_schedule) = alt;
    let t_alt = sim(&alt_schedule);
    let row = |algorithm, makespan: Seconds| SweepRow {
        topology: topology.to_string(),
        p,
        n,
        model: model_name,
        algorithm,
        makespan,
        speedup_vs_ring: t_ring / makespan,
    };
    vec![row("R", t_ring), row(alt_name, t_alt)]
}

/// The overlapped double tree (C1) at the paper's scale-out chunking.
fn c1_schedule(p: usize, n: ByteSize) -> Schedule {
    let dt = DoubleBinaryTree::new(p).expect("p >= 2");
    tree_allreduce(
        dt.trees(),
        &Chunking::even(n, fig14::chunk_count(n)),
        Overlap::ReductionBroadcast,
    )
}

/// A torus-native dual ring: the message striped over a row-major snake
/// and a column-major snake, which mostly occupy disjoint torus links
/// (row links vs column links) and so overlap well — the natural
/// counterpart of C1's two trees on a topology where binary trees don't
/// embed.
fn torus_dual_ring(rows: usize, cols: usize, n: ByteSize) -> Schedule {
    let row_major: Vec<Rank> = Rank::all(rows * cols).collect();
    let col_major: Vec<Rank> = (0..cols)
        .flat_map(|c| (0..rows).map(move |r| Rank((r * cols + c) as u32)))
        .collect();
    ring_allreduce_multi(n, &[row_major, col_major])
}

/// Default NVSwitch sweep: P in {8, 16, 32}, N in {1 MiB, 64 MiB},
/// under the approximation, the passthrough fabric, and a split fabric
/// with eight endpoints per leaf and 2:1 oversubscribed uplinks.
pub fn nvswitch_sweep() -> Vec<SweepRow> {
    nvswitch_sweep_with_threads(1)
}

/// [`nvswitch_sweep`] fanned out over `threads` sweep workers.
pub fn nvswitch_sweep_with_threads(threads: usize) -> Vec<SweepRow> {
    let models: [(&'static str, NetworkModel); 3] = [
        ("approx", NetworkModel::ChannelApprox),
        (
            "switch",
            NetworkModel::SwitchFabric(FabricSpec::passthrough()),
        ),
        (
            "switch_x8",
            NetworkModel::SwitchFabric(FabricSpec {
                radix: Some(8),
                oversubscription: 2.0,
                ..FabricSpec::passthrough()
            }),
        ),
    ];
    let mut points = Vec::new();
    for p in [8usize, 16, 32] {
        for n in [ByteSize::mib(1), ByteSize::mib(64)] {
            for (model_name, model) in models {
                points.push((p, n, model_name, model));
            }
        }
    }
    ccube_sim::sweep(&points, threads, |_, &(p, n, model_name, model)| {
        let topo = nvswitch(p);
        sweep_cells(
            &format!("nvswitch{p}"),
            &topo,
            p,
            n,
            (model_name, model),
            true,
            ("C1", c1_schedule(p, n)),
        )
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Default 2-D torus sweep: shapes 2×4, 4×4 and 4×8, N in {1 MiB,
/// 64 MiB}, under both models. The torus derives a switchless fabric,
/// so the two models must agree — the CSV records that end-to-end.
pub fn torus_sweep() -> Vec<SweepRow> {
    torus_sweep_with_threads(1)
}

/// [`torus_sweep`] fanned out over `threads` sweep workers.
pub fn torus_sweep_with_threads(threads: usize) -> Vec<SweepRow> {
    let models: [(&'static str, NetworkModel); 2] = [
        ("approx", NetworkModel::ChannelApprox),
        (
            "switch",
            NetworkModel::SwitchFabric(FabricSpec::passthrough()),
        ),
    ];
    let mut points = Vec::new();
    for (rows, cols) in [(2usize, 4usize), (4, 4), (4, 8)] {
        for n in [ByteSize::mib(1), ByteSize::mib(64)] {
            for (model_name, model) in models {
                points.push((rows, cols, n, model_name, model));
            }
        }
    }
    ccube_sim::sweep(
        &points,
        threads,
        |_, &(rows, cols, n, model_name, model)| {
            let topo = torus2d(rows, cols);
            sweep_cells(
                &format!("torus{rows}x{cols}"),
                &topo,
                rows * cols,
                n,
                (model_name, model),
                false,
                ("R2", torus_dual_ring(rows, cols, n)),
            )
        },
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Renders sweep rows as CSV (shared by the NVSwitch and torus sweeps).
pub fn sweep_to_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from("topology,p,n_bytes,model,algorithm,makespan_us,speedup_vs_ring\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{:.3},{:.4}\n",
            r.topology,
            r.p,
            r.n.as_u64(),
            r.model,
            r.algorithm,
            r.makespan.as_micros(),
            r.speedup_vs_ring
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_rows_agree_with_the_approximation() {
        let rows = fabric_study();
        for a in rows.iter().filter(|r| r.model == "approx") {
            let s = rows
                .iter()
                .find(|r| {
                    r.model == "switch" && r.topology == a.topology && r.algorithm == a.algorithm
                })
                .expect("paired switch row");
            let d = (a.makespan - s.makespan).as_secs_f64().abs();
            assert!(
                d < 1e-9,
                "{}/{}: approx {:?} vs switch {:?}",
                a.topology,
                a.algorithm,
                a.makespan,
                s.makespan
            );
        }
    }

    #[test]
    fn oversubscribed_fabric_is_never_faster() {
        let rows = fabric_study();
        for r in rows.iter().filter(|r| r.model == "switch_x4") {
            let base = rows
                .iter()
                .find(|b| {
                    b.model == "switch" && b.topology == r.topology && b.algorithm == r.algorithm
                })
                .expect("paired passthrough row");
            assert!(
                r.makespan >= base.makespan - Seconds::new(1e-12),
                "{}/{}: oversubscription sped things up",
                r.topology,
                r.algorithm
            );
        }
    }

    #[test]
    fn torus_sweep_models_agree() {
        let rows = torus_sweep();
        for a in rows.iter().filter(|r| r.model == "approx") {
            let s = rows
                .iter()
                .find(|r| {
                    r.model == "switch"
                        && r.topology == a.topology
                        && r.n == a.n
                        && r.algorithm == a.algorithm
                })
                .expect("paired switch row");
            assert!(
                (a.makespan - s.makespan).as_secs_f64().abs() < 1e-9,
                "{}/{}: {:?} vs {:?}",
                a.topology,
                a.algorithm,
                a.makespan,
                s.makespan
            );
        }
    }
}
