//! Fig. 13 — normalized overall performance of B / C1 / C2 / R / CC
//! across networks, batch sizes, and interconnect bandwidths.

use crate::pipeline::{Mode, TrainingPipeline};
use ccube_dnn::{resnet50, vgg16, zfnet, ComputeModel, NetworkModel};
use std::fmt;

/// One bar of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Network name.
    pub network: &'static str,
    /// Per-GPU batch size.
    pub batch: usize,
    /// `"high"` (NVLink) or `"low"` (PCIe-class, bandwidth / 4).
    pub bandwidth: &'static str,
    /// Execution mode.
    pub mode: Mode,
    /// Throughput normalized to ideal linear speedup (1.0 = the
    /// communication cost is fully hidden).
    pub normalized_perf: f64,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} b={:<4} {:<4} {:<3} {:.3}",
            self.network, self.batch, self.bandwidth, self.mode, self.normalized_perf
        )
    }
}

/// The default grid: the paper's three networks × batch
/// {16, 32, 64, 128} × {low, high} bandwidth × the five modes.
pub fn run() -> Vec<Row> {
    run_with(&[16, 32, 64, 128])
}

/// Runs the grid for explicit batch sizes (serially).
pub fn run_with(batches: &[usize]) -> Vec<Row> {
    run_with_threads(batches, 1)
}

/// [`run_with`] fanned out over `threads` workers via
/// [`ccube_sim::sweep()`]: each `(network, batch, bandwidth)` cell is one
/// sweep point; flattening the index-ordered results reproduces the
/// serial row order exactly.
pub fn run_with_threads(batches: &[usize], threads: usize) -> Vec<Row> {
    let compute = ComputeModel::v100();
    let nets: [(&'static str, NetworkModel); 3] = [
        ("zfnet", zfnet()),
        ("vgg16", vgg16()),
        ("resnet50", resnet50()),
    ];
    let points: Vec<(usize, usize, &'static str, f64)> = (0..nets.len())
        .flat_map(|ni| {
            batches.iter().flat_map(move |&batch| {
                [("low", 0.25), ("high", 1.0)]
                    .into_iter()
                    .map(move |(bw_name, scale)| (ni, batch, bw_name, scale))
            })
        })
        .collect();
    ccube_sim::sweep(&points, threads, |_, &(ni, batch, bw_name, scale)| {
        let (name, net) = &nets[ni];
        let pipeline = TrainingPipeline::dgx1_with(net, batch, &compute, scale);
        pipeline
            .all_modes()
            .into_iter()
            .map(|report| Row {
                network: name,
                batch,
                bandwidth: bw_name,
                mode: report.mode,
                normalized_perf: report.normalized_perf,
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The DES-grounded variant of the grid: instead of the analytic staged
/// arrival model, the tree modes take their per-chunk arrival curves
/// from discrete-event simulations of the actual schedules on the DGX-1
/// (conflict-free physical embedding), and the ring takes its makespan
/// from a simulated NCCL-style 6-ring run over the machine's Hamiltonian
/// decomposition. Cross-validated against [`run_with`] in tests.
pub fn run_simulated(batches: &[usize]) -> Vec<Row> {
    run_simulated_threads(batches, 1)
}

/// [`run_simulated`] fanned out over `threads` workers: each
/// `(network, bandwidth)` pair — the unit that owns one set of
/// discrete-event simulations — is one sweep point.
pub fn run_simulated_threads(batches: &[usize], threads: usize) -> Vec<Row> {
    use crate::arrivals::ChunkArrivals;
    use ccube_collectives::{
        ring_allreduce_multi, tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap, Rank,
    };
    use ccube_sim::{simulate, SimOptions};
    use ccube_topology::{dgx1, disjoint_rings};

    let compute = ComputeModel::v100();
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let ring_orders: Vec<Vec<Rank>> = disjoint_rings(&topo, 3)
        .into_iter()
        .flat_map(|cycle| {
            let fwd: Vec<Rank> = cycle.iter().map(|g| Rank(g.0)).collect();
            let mut rev = fwd.clone();
            rev.reverse();
            [fwd, rev]
        })
        .collect();

    let nets: [(&'static str, NetworkModel); 3] = [
        ("zfnet", zfnet()),
        ("vgg16", vgg16()),
        ("resnet50", resnet50()),
    ];
    let points: Vec<(usize, &'static str, f64)> = (0..nets.len())
        .flat_map(|ni| {
            [("low", 0.25f64), ("high", 1.0)]
                .into_iter()
                .map(move |(bw_name, scale)| (ni, bw_name, scale))
        })
        .collect();
    ccube_sim::sweep(&points, threads, |_, &(ni, bw_name, scale)| {
        let (name, net) = &nets[ni];
        let n = net.total_param_bytes();
        // One reference pipeline per (net, bw) to fix the chunking.
        let reference = TrainingPipeline::dgx1_with(net, 64, &compute, scale);
        let k = reference.num_chunks();
        let chunking = Chunking::even(n, k);
        let opts = SimOptions {
            bandwidth_scale: scale,
            ..SimOptions::default()
        };
        let tree_arrivals = |overlap: Overlap| {
            let s = tree_allreduce(dt.trees(), &chunking, overlap);
            let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
            ChunkArrivals::from_sim(&simulate(&topo, &s, &e, &opts).expect("simulates"))
        };
        let base = tree_arrivals(Overlap::None);
        let over = tree_arrivals(Overlap::ReductionBroadcast);
        let ring_schedule = ring_allreduce_multi(n, &ring_orders);
        let ring_emb = Embedding::identity(&topo, &ring_schedule).expect("embeddable");
        let ring_time = simulate(&topo, &ring_schedule, &ring_emb, &opts)
            .expect("simulates")
            .makespan();
        let ring = ChunkArrivals::ring_uniform(ring_time, k);

        let mut rows = Vec::new();
        for &batch in batches {
            let pipeline = TrainingPipeline::dgx1_with(net, batch, &compute, scale);
            for mode in Mode::ALL {
                let arrivals = match mode {
                    Mode::Baseline | Mode::Chained => &base,
                    Mode::OverlappedTree | Mode::CCube => &over,
                    Mode::Ring | Mode::BackwardOverlap => &ring,
                };
                let report = pipeline.iteration_with_arrivals(mode, arrivals);
                rows.push(Row {
                    network: name,
                    batch,
                    bandwidth: bw_name,
                    mode,
                    normalized_perf: report.normalized_perf,
                });
            }
        }
        rows
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("network,batch,bandwidth,mode,normalized_perf\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.4}\n",
            r.network, r.batch, r.bandwidth, r.mode, r.normalized_perf
        ));
    }
    out
}

/// Helper for tests/analysis: the normalized performance of one cell.
pub fn lookup(rows: &[Row], network: &str, batch: usize, bandwidth: &str, mode: Mode) -> f64 {
    rows.iter()
        .find(|r| {
            r.network == network && r.batch == batch && r.bandwidth == bandwidth && r.mode == mode
        })
        .map(|r| r.normalized_perf)
        .expect("cell present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete() {
        let rows = run_with(&[16, 64]);
        // 3 networks x 2 batches x 2 bandwidths x 5 modes
        assert_eq!(rows.len(), 3 * 2 * 2 * 5);
        for r in &rows {
            assert!(r.normalized_perf > 0.0 && r.normalized_perf <= 1.0);
        }
    }

    #[test]
    fn ccube_improvement_over_baseline_matches_paper() {
        // Paper: CC improves over B by ~32% on average, up to 61%.
        let rows = run();
        let mut improvements = Vec::new();
        for net in ["zfnet", "vgg16", "resnet50"] {
            for batch in [16usize, 32, 64, 128] {
                for bw in ["low", "high"] {
                    let b = lookup(&rows, net, batch, bw, Mode::Baseline);
                    let cc = lookup(&rows, net, batch, bw, Mode::CCube);
                    improvements.push(cc / b - 1.0);
                }
            }
        }
        let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
        let max = improvements.iter().copied().fold(0.0, f64::max);
        assert!((0.10..0.80).contains(&avg), "avg improvement {avg:.3}");
        assert!(max > 0.4, "max improvement {max:.3}");
    }

    #[test]
    fn ring_beats_c1_somewhere_and_cc_beats_ring_mostly() {
        let rows = run();
        let mut r_over_c1 = 0;
        let mut cc_over_r = 0;
        let mut cells = 0;
        for net in ["zfnet", "vgg16", "resnet50"] {
            for batch in [16usize, 32, 64, 128] {
                for bw in ["low", "high"] {
                    cells += 1;
                    let c1 = lookup(&rows, net, batch, bw, Mode::OverlappedTree);
                    let r = lookup(&rows, net, batch, bw, Mode::Ring);
                    let cc = lookup(&rows, net, batch, bw, Mode::CCube);
                    if r > c1 {
                        r_over_c1 += 1;
                    }
                    if cc >= r {
                        cc_over_r += 1;
                    }
                }
            }
        }
        // Paper: "R shows better performance than C1 ... However, except
        // for small batch size for ZFNet, CC exceeds R".
        assert!(r_over_c1 > 0, "ring never beats C1");
        assert!(
            cc_over_r as f64 / cells as f64 > 0.7,
            "CC beats R in only {cc_over_r}/{cells} cells"
        );
    }

    #[test]
    fn efficiency_rises_with_batch_and_bandwidth() {
        let rows = run();
        for net in ["vgg16", "resnet50"] {
            let lo = lookup(&rows, net, 16, "low", Mode::CCube);
            let hi = lookup(&rows, net, 128, "high", Mode::CCube);
            assert!(hi > lo, "{net}: {lo} -> {hi}");
        }
        // peak chaining efficiency approaches the paper's 98%
        let best = lookup(&rows, "resnet50", 128, "high", Mode::CCube);
        assert!(best > 0.93, "best CC efficiency {best}");
    }

    #[test]
    fn simulated_grid_matches_analytic_grid_for_tree_modes() {
        // The DES-grounded variant must agree with the analytic arrival
        // model on the conflict-free DGX-1 embedding.
        let analytic = run_with(&[32, 128]);
        let simulated = run_simulated(&[32, 128]);
        for net in ["zfnet", "vgg16", "resnet50"] {
            for batch in [32usize, 128] {
                for bw in ["low", "high"] {
                    for mode in [Mode::Baseline, Mode::OverlappedTree, Mode::CCube] {
                        let a = lookup(&analytic, net, batch, bw, mode);
                        let s = {
                            let rows = &simulated;
                            rows.iter()
                                .find(|r| {
                                    r.network == net
                                        && r.batch == batch
                                        && r.bandwidth == bw
                                        && r.mode == mode
                                })
                                .unwrap()
                                .normalized_perf
                        };
                        let rel = (a - s).abs() / a;
                        assert!(
                            rel < 0.05,
                            "{net} b={batch} {bw} {mode}: analytic {a:.3} vs sim {s:.3}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn c2_beats_baseline_everywhere() {
        let rows = run_with(&[32, 128]);
        for net in ["zfnet", "vgg16", "resnet50"] {
            for batch in [32usize, 128] {
                for bw in ["low", "high"] {
                    let b = lookup(&rows, net, batch, bw, Mode::Baseline);
                    let c2 = lookup(&rows, net, batch, bw, Mode::Chained);
                    assert!(c2 >= b, "{net} b={batch} {bw}");
                }
            }
        }
    }
}
