//! Extension studies beyond the paper's figures.
//!
//! Follow-ups the paper motivates but does not evaluate:
//!
//! * [`topology_study`] — the related-work section leaves open "how
//!   alternative physical topologies … can be exploited": we rerun the
//!   DGX-1 comparison on an NVSwitch-class flat crossbar, where no
//!   detours exist and per-GPU bandwidth is the only constraint. The
//!   result is instructive: with the aggregate NIC shared by both
//!   phases, the overlapped tree's *makespan* advantage nearly vanishes
//!   (there is no idle reverse channel to fill), but its *turnaround*
//!   advantage — the one computation chaining feeds on — survives
//!   intact, so C-Cube remains useful on switch-attached machines.
//! * [`detour_vs_host`] — quantifies §IV-A's claim that routing the
//!   missing cross-quad links through PCIe/the host "can cause
//!   significant performance degradation", by embedding the same
//!   overlapped double tree both ways.
//! * [`chunk_sensitivity`] — validates Eq. 4's `K_opt` against the
//!   discrete-event simulator by sweeping the chunk count.
//! * [`overlap_strategy_study`] — quantifies the Fig. 2 argument:
//!   backward overlap (Horovod/DDP) vs C-Cube's forward chaining.
//! * [`cosim_validation`] — the closed-form pipeline, the DES-fed
//!   pipeline, and the full compute+communication co-simulation must
//!   agree on the same iteration (internal consistency).

use ccube_collectives::cost::{k_opt, CostParams};
use ccube_collectives::{
    ring_allreduce_multi, tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap, Rank,
    Schedule,
};
use ccube_sim::{simulate, SimOptions, SimReport};
use ccube_topology::{dgx1, disjoint_rings, nvswitch, ByteSize, Seconds, Topology};
use std::fmt;

/// A row of the alternative-topology study.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyRow {
    /// Topology name.
    pub topology: &'static str,
    /// Algorithm label (`B`, `C1`, `R`).
    pub algorithm: &'static str,
    /// AllReduce makespan.
    pub makespan: Seconds,
    /// Gradient turnaround time.
    pub turnaround: Seconds,
    /// Number of detour routes the embedding needed.
    pub detours: usize,
}

impl fmt::Display for TopologyRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<3} makespan={} turnaround={} detours={}",
            self.topology, self.algorithm, self.makespan, self.turnaround, self.detours
        )
    }
}

fn sim_dgx1(schedule: &Schedule, topo: &Topology, tree_placement: bool) -> (SimReport, usize) {
    // Tree schedules need the physical-topology-aware rank placement; the
    // multi-ring orders already name physical GPUs (the Hamiltonian
    // cycles), so they embed with the identity mapping.
    let emb = if tree_placement {
        Embedding::dgx1_double_tree(topo, schedule)
    } else {
        Embedding::identity(topo, schedule)
    }
    .expect("embeddable");
    let detours = emb.routes().values().filter(|r| r.is_detour()).count();
    (
        simulate(topo, schedule, &emb, &SimOptions::default()).expect("simulates"),
        detours,
    )
}

fn sim_switch(schedule: &Schedule, topo: &Topology) -> (SimReport, usize) {
    let emb = Embedding::nic(topo, schedule).expect("embeddable");
    (
        simulate(topo, schedule, &emb, &SimOptions::scale_out()).expect("simulates"),
        0,
    )
}

/// Compares B / C1 / R on the DGX-1 hybrid mesh-cube against an
/// NVSwitch-class crossbar, 64 MiB message.
pub fn topology_study() -> Vec<TopologyRow> {
    topology_study_threads(1)
}

/// [`topology_study`] fanned out over `threads` workers: each
/// `(topology, algorithm)` cell is one sweep point.
pub fn topology_study_threads(threads: usize) -> Vec<TopologyRow> {
    let n = ByteSize::mib(64);
    let params = CostParams::nvlink();
    let k = k_opt(&params, 8, n).div_ceil(2) * 2;
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let chunking = Chunking::even(n, k);
    let b = tree_allreduce(dt.trees(), &chunking, Overlap::None);
    let c1 = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);

    let mesh = dgx1();
    let ring_orders: Vec<Vec<Rank>> = disjoint_rings(&mesh, 3)
        .into_iter()
        .flat_map(|cycle| {
            let fwd: Vec<Rank> = cycle.iter().map(|g| Rank(g.0)).collect();
            let mut rev = fwd.clone();
            rev.reverse();
            [fwd, rev]
        })
        .collect();
    let r_mesh = ring_allreduce_multi(n, &ring_orders);
    // On the crossbar all rings share the one NIC, so a single ring order
    // suffices (more rings would just contend).
    let identity: Vec<Rank> = Rank::all(8).collect();
    let r_switch = ring_allreduce_multi(n, std::slice::from_ref(&identity));

    let switch = nvswitch(8);
    let points: [(&'static str, &'static str, &Schedule); 6] = [
        ("dgx1", "B", &b),
        ("dgx1", "C1", &c1),
        ("dgx1", "R", &r_mesh),
        ("nvswitch", "B", &b),
        ("nvswitch", "C1", &c1),
        ("nvswitch", "R", &r_switch),
    ];
    ccube_sim::sweep(&points, threads, |_, &(topology, alg, schedule)| {
        let (report, detours) = if topology == "dgx1" {
            sim_dgx1(schedule, &mesh, alg != "R")
        } else {
            sim_switch(schedule, &switch)
        };
        TopologyRow {
            topology,
            algorithm: alg,
            makespan: report.makespan(),
            turnaround: report.turnaround(),
            detours,
        }
    })
}

/// Renders topology rows as CSV.
pub fn topology_to_csv(rows: &[TopologyRow]) -> String {
    let mut out = String::from("topology,algorithm,makespan_us,turnaround_us,detours\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.2},{:.2},{}\n",
            r.topology,
            r.algorithm,
            r.makespan.as_micros(),
            r.turnaround.as_micros(),
            r.detours
        ));
    }
    out
}

/// A row of the detour-vs-host comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DetourRow {
    /// `"nvlink-detour"` or `"host-bridge"`.
    pub routing: &'static str,
    /// Message size.
    pub n: ByteSize,
    /// AllReduce makespan.
    pub makespan: Seconds,
    /// Slowdown relative to the detour embedding.
    pub slowdown: f64,
}

impl fmt::Display for DetourRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} N={:<10} makespan={} (x{:.2})",
            self.routing,
            format!("{}", self.n),
            self.makespan,
            self.slowdown
        )
    }
}

/// Quantifies the detour routes' advantage over the PCIe host bridge for
/// the overlapped double tree.
pub fn detour_vs_host() -> Vec<DetourRow> {
    detour_vs_host_threads(1)
}

/// [`detour_vs_host`] fanned out over `threads` workers: each message
/// size (two embeddings, two simulations) is one sweep point.
pub fn detour_vs_host_threads(threads: usize) -> Vec<DetourRow> {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let params = CostParams::nvlink();
    let sizes = [ByteSize::mib(16), ByteSize::mib(64)];
    ccube_sim::sweep(&sizes, threads, |_, &n| {
        let k = k_opt(&params, 8, n).div_ceil(2) * 2;
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(n, k),
            Overlap::ReductionBroadcast,
        );
        let detour = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
        // Host embedding: identity placement with host fallback permitted,
        // mimicking a topology-oblivious runtime.
        let host = Embedding::identity_with_host(&topo, &s).expect("embeddable");
        let t_detour = simulate(&topo, &s, &detour, &SimOptions::default())
            .expect("simulates")
            .makespan();
        let t_host = simulate(&topo, &s, &host, &SimOptions::default())
            .expect("simulates")
            .makespan();
        [
            DetourRow {
                routing: "nvlink-detour",
                n,
                makespan: t_detour,
                slowdown: 1.0,
            },
            DetourRow {
                routing: "host-bridge",
                n,
                makespan: t_host,
                slowdown: t_host / t_detour,
            },
        ]
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Renders detour rows as CSV.
pub fn detour_to_csv(rows: &[DetourRow]) -> String {
    let mut out = String::from("routing,bytes,makespan_us,slowdown\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.2},{:.3}\n",
            r.routing,
            r.n.as_u64(),
            r.makespan.as_micros(),
            r.slowdown
        ));
    }
    out
}

/// A row of the chunk-count sensitivity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRow {
    /// Chunk count.
    pub k: usize,
    /// Whether this is the Eq. 4 optimum (rounded to the tree pair).
    pub is_k_opt: bool,
    /// Simulated overlapped-double-tree makespan.
    pub makespan: Seconds,
}

impl fmt::Display for ChunkRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K={:<5} makespan={}{}",
            self.k,
            self.makespan,
            if self.is_k_opt { "  <- K_opt" } else { "" }
        )
    }
}

/// Sweeps the chunk count for a 64 MiB overlapped double tree on the
/// DGX-1 and marks Eq. 4's optimum.
pub fn chunk_sensitivity() -> Vec<ChunkRow> {
    chunk_sensitivity_threads(1)
}

/// [`chunk_sensitivity`] fanned out over `threads` workers: each chunk
/// count is one sweep point.
pub fn chunk_sensitivity_threads(threads: usize) -> Vec<ChunkRow> {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let n = ByteSize::mib(64);
    let kopt = k_opt(&CostParams::nvlink(), 8, n).div_ceil(2) * 2;
    let mut ks = vec![2usize, 8, 24, kopt / 2, kopt, kopt * 2, kopt * 8];
    ks.sort_unstable();
    ks.dedup();
    ccube_sim::sweep(&ks, threads, |_, &k| {
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(n, k),
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
        let makespan = simulate(&topo, &s, &e, &SimOptions::default())
            .expect("simulates")
            .makespan();
        ChunkRow {
            k,
            is_k_opt: k == kopt,
            makespan,
        }
    })
}

/// Renders chunk rows as CSV.
pub fn chunk_to_csv(rows: &[ChunkRow]) -> String {
    let mut out = String::from("k,is_k_opt,makespan_us\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.2}\n",
            r.k,
            r.is_k_opt,
            r.makespan.as_micros()
        ));
    }
    out
}

/// A row of the overlap-strategy comparison (paper Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyRow {
    /// Network name.
    pub network: &'static str,
    /// Batch size / bandwidth label.
    pub config: &'static str,
    /// Strategy: `B` (no overlap), `BW` (backward overlap, Fig. 2(b)),
    /// `CC` (forward chaining, Fig. 2(c)).
    pub strategy: &'static str,
    /// Normalized performance.
    pub normalized_perf: f64,
}

impl fmt::Display for StrategyRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} {:<9} {:<3} {:.3}",
            self.network, self.config, self.strategy, self.normalized_perf
        )
    }
}

/// Quantifies the paper's Fig. 2 argument: no overlap (`B`) vs
/// backward-overlap (`BW`, the Horovod/DDP strategy of Fig. 2(b)) vs
/// C-Cube's forward chaining (`CC`, Fig. 2(c)).
///
/// Under a clean α+β model both overlap strategies hide almost all
/// communication when compute dominates; `BW` even profits from the
/// ring's aggregate bandwidth in communication-bound cells. The paper's
/// *measured* counterpoint (footnote 8: PyTorch's backward overlap "did
/// not provide any significant performance improvement" on their DGX-1)
/// reflects framework realities the model omits — bucketing, stream
/// scheduling, SM contention — which is precisely C-Cube's pitch: it
/// reaches the same hiding through one-shot, in-order communication
/// without relying on those mechanisms.
pub fn overlap_strategy_study() -> Vec<StrategyRow> {
    overlap_strategy_study_threads(1)
}

/// [`overlap_strategy_study`] fanned out over `threads` workers: each
/// `(network, config)` cell is one sweep point.
pub fn overlap_strategy_study_threads(threads: usize) -> Vec<StrategyRow> {
    use crate::pipeline::{Mode, TrainingPipeline};
    use ccube_dnn::ComputeModel;

    let compute = ComputeModel::v100();
    let nets: [(&'static str, ccube_dnn::NetworkModel); 3] = [
        ("zfnet", ccube_dnn::zfnet()),
        ("vgg16", ccube_dnn::vgg16()),
        ("resnet50", ccube_dnn::resnet50()),
    ];
    let points: Vec<(usize, &'static str, usize, f64)> = (0..nets.len())
        .flat_map(|ni| {
            [("b64/high", 64usize, 1.0), ("b16/low", 16, 0.25)]
                .into_iter()
                .map(move |(config, batch, scale)| (ni, config, batch, scale))
        })
        .collect();
    ccube_sim::sweep(&points, threads, |_, &(ni, config, batch, scale)| {
        let (name, net) = &nets[ni];
        let pipeline = TrainingPipeline::dgx1_with(net, batch, &compute, scale);
        let b = pipeline.iteration(Mode::Baseline).normalized_perf;
        let bw = pipeline.iteration(Mode::BackwardOverlap).normalized_perf;
        let cc = pipeline.iteration(Mode::CCube).normalized_perf;
        [("B", b), ("BW", bw), ("CC", cc)].map(|(strategy, perf)| StrategyRow {
            network: name,
            config,
            strategy,
            normalized_perf: perf,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Renders strategy rows as CSV.
pub fn strategy_to_csv(rows: &[StrategyRow]) -> String {
    let mut out = String::from("network,config,strategy,normalized_perf\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.4}\n",
            r.network, r.config, r.strategy, r.normalized_perf
        ));
    }
    out
}

/// A row of the three-model cross-validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimRow {
    /// Which model produced the number.
    pub model: &'static str,
    /// C-Cube iteration time (ResNet-50, batch 64, high bandwidth).
    pub t_iter: Seconds,
}

impl fmt::Display for CosimRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<24} t_iter={}", self.model, self.t_iter)
    }
}

/// Cross-validates the three independent performance models on the same
/// C-Cube iteration (ResNet-50, batch 64, DGX-1):
///
/// 1. the closed-form pipeline (analytic chunk arrivals),
/// 2. the network DES feeding the pipeline (simulated arrivals),
/// 3. the full compute+communication co-simulation
///    ([`simulate_system`](ccube_sim::simulate_system)).
///
/// The three agree to within a few percent — the reproduction's internal
/// consistency check.
pub fn cosim_validation() -> Vec<CosimRow> {
    use crate::arrivals::ChunkArrivals;
    use crate::pipeline::Mode;
    use crate::systemjob::build_iteration_job;
    use ccube_sim::simulate_system;

    let net = ccube_dnn::resnet50();
    let pipeline = crate::pipeline::TrainingPipeline::dgx1(&net, 64);
    let closed = pipeline.iteration(Mode::CCube).t_iter;

    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let k = pipeline.num_chunks();
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(net.total_param_bytes(), k),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
    let net_des = simulate(&topo, &s, &e, &SimOptions::default()).expect("simulates");
    let des_fed = pipeline
        .iteration_with_arrivals(Mode::CCube, &ChunkArrivals::from_sim(&net_des))
        .t_iter;

    let job = build_iteration_job(&pipeline, Overlap::ReductionBroadcast, &[1.0; 8]);
    let ej = Embedding::dgx1_double_tree(&topo, &job.schedule).expect("embeddable");
    let cosim = simulate_system(&topo, &job, &ej, &SimOptions::default())
        .expect("simulates")
        .makespan;

    vec![
        CosimRow {
            model: "closed-form",
            t_iter: closed,
        },
        CosimRow {
            model: "network-des+pipeline",
            t_iter: des_fed,
        },
        CosimRow {
            model: "full-cosim",
            t_iter: cosim,
        },
    ]
}

/// Renders cosim rows as CSV.
pub fn cosim_to_csv(rows: &[CosimRow]) -> String {
    let mut out = String::from("model,t_iter_us\n");
    for r in rows {
        out.push_str(&format!("{},{:.2}\n", r.model, r.t_iter.as_micros()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvswitch_needs_no_detours_and_keeps_overlap_benefit() {
        let rows = topology_study();
        let get = |t: &str, a: &str| {
            rows.iter()
                .find(|r| r.topology == t && r.algorithm == a)
                .unwrap()
        };
        // No detours on the crossbar; the mesh-cube needs them.
        assert_eq!(get("nvswitch", "C1").detours, 0);
        assert!(get("dgx1", "C1").detours > 0);
        // On the mesh-cube, where each tree direction owns a dedicated
        // NVLink, overlap buys a large makespan win.
        let b = get("dgx1", "B").makespan;
        let c1 = get("dgx1", "C1").makespan;
        assert!(b / c1 > 1.3, "dgx1: B {b} vs C1 {c1}");
        // On the crossbar the per-GPU NIC is shared by both phases, so
        // overlap barely moves the makespan — but the turnaround benefit
        // (what C-Cube's chaining feeds on) survives on both machines.
        let sb = get("nvswitch", "B").makespan;
        let sc1 = get("nvswitch", "C1").makespan;
        assert!(sc1 <= sb, "nvswitch: C1 {sc1} must not lose to B {sb}");
        for t in ["dgx1", "nvswitch"] {
            let tb = get(t, "B").turnaround;
            let tc = get(t, "C1").turnaround;
            assert!(tb / tc > 3.0, "{t}: turnaround {tb} vs {tc}");
        }
    }

    #[test]
    fn host_bridge_is_significantly_slower() {
        // §IV-A: PCIe/host routing "can cause significant performance
        // degradation" — quantified here as >20% on the makespan.
        let rows = detour_vs_host();
        for r in rows.iter().filter(|r| r.routing == "host-bridge") {
            assert!(r.slowdown > 1.2, "N={}: slowdown {:.2}", r.n, r.slowdown);
        }
    }

    #[test]
    fn overlap_strategies_rank_sanely() {
        let rows = overlap_strategy_study();
        let get = |net: &str, cfg: &str, strat: &str| {
            rows.iter()
                .find(|r| r.network == net && r.config == cfg && r.strategy == strat)
                .unwrap()
                .normalized_perf
        };
        for net in ["zfnet", "vgg16", "resnet50"] {
            for cfg in ["b64/high", "b16/low"] {
                // Any overlap beats no overlap.
                assert!(get(net, cfg, "BW") >= get(net, cfg, "B"), "{net} {cfg}");
                assert!(get(net, cfg, "CC") >= get(net, cfg, "B"), "{net} {cfg}");
            }
            // In the compute-bound cell both overlap strategies approach
            // ideal and CC is competitive with BW without any gradient
            // partitioning or re-ordering.
            let cc = get(net, "b64/high", "CC");
            let bw = get(net, "b64/high", "BW");
            assert!(cc > bw - 0.02, "{net}: CC {cc} vs BW {bw}");
        }
    }

    #[test]
    fn three_models_agree() {
        let rows = cosim_validation();
        assert_eq!(rows.len(), 3);
        let base = rows[0].t_iter.as_secs_f64();
        for r in &rows[1..] {
            let rel = (r.t_iter.as_secs_f64() - base).abs() / base;
            assert!(rel < 0.03, "{} deviates {:.2}%", r.model, rel * 100.0);
        }
    }

    #[test]
    fn k_opt_is_near_the_simulated_minimum() {
        let rows = chunk_sensitivity();
        let best = rows
            .iter()
            .min_by(|a, b| a.makespan.cmp(&b.makespan))
            .unwrap();
        let kopt_row = rows.iter().find(|r| r.is_k_opt).unwrap();
        // The analytic optimum is within 10% of the simulated best.
        assert!(
            kopt_row.makespan.as_secs_f64() <= best.makespan.as_secs_f64() * 1.10,
            "K_opt {} at {} vs best K {} at {}",
            kopt_row.k,
            kopt_row.makespan,
            best.k,
            best.makespan
        );
        // Extremes are clearly worse than the optimum.
        let coarse = rows.first().unwrap();
        let fine = rows.last().unwrap();
        assert!(coarse.makespan > kopt_row.makespan);
        assert!(fine.makespan > kopt_row.makespan);
    }
}
