//! Fig. 14 — scale-out simulations: (a) communication performance of the
//! overlapped tree (C1) vs the ring, and (b) gradient-turnaround speedup
//! of C1 over the baseline tree, as node count grows.
//!
//! The paper runs these in ASTRA-sim on a hierarchical, indirect
//! (switch-based) topology with constant per-node bandwidth; we run them
//! in `ccube-sim` on [`hierarchical`].

use ccube_collectives::{
    ring_allreduce, tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap,
};
use ccube_sim::{simulate, SimOptions, SimReport};
use ccube_topology::{hierarchical, ByteSize, Seconds};
use std::fmt;

/// One grid point of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Node count.
    pub p: usize,
    /// Message size.
    pub n: ByteSize,
    /// Chunk count used by the trees.
    pub k: usize,
    /// Ring AllReduce time.
    pub t_ring: Seconds,
    /// Overlapped-tree (C1) AllReduce time.
    pub t_c1: Seconds,
    /// Baseline-tree (B) AllReduce time.
    pub t_b: Seconds,
    /// Fig. 14(a): `T_ring / T_C1` — above 1.0, C1 wins.
    pub c1_over_ring: f64,
    /// Fig. 14(b): baseline turnaround / overlapped turnaround.
    pub turnaround_speedup: f64,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={:<4} N={:<10} C1/R={:.2} turnaround x{:.1}",
            self.p,
            format!("{}", self.n),
            self.c1_over_ring,
            self.turnaround_speedup
        )
    }
}

/// Default sweep: P in {4, 8, …, 256}, N in {16 KiB, 1 MiB, 64 MiB}.
pub fn run() -> Vec<Row> {
    run_net(ccube_sim::NetworkModel::ChannelApprox)
}

/// [`run`] under an explicit network model.
pub fn run_net(network: ccube_sim::NetworkModel) -> Vec<Row> {
    run_with_threads_net(
        &[4, 8, 16, 32, 64, 128, 256],
        &[ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(64)],
        1,
        network,
    )
}

fn sim_on(
    p: usize,
    schedule: &ccube_collectives::Schedule,
    network: ccube_sim::NetworkModel,
) -> SimReport {
    let topo = hierarchical(p);
    let emb = Embedding::nic(&topo, schedule).expect("nic embedding");
    simulate(
        &topo,
        schedule,
        &emb,
        &SimOptions::scale_out().with_network(network),
    )
    .expect("simulates")
}

/// The paper's scale-out chunk policy: 256 KiB chunks ("256 chunks for
/// 64MB"), so small messages get few chunks (and thus little turnaround
/// benefit) while large ones pipeline deeply.
pub fn chunk_count(n: ByteSize) -> usize {
    let k = (n.as_u64() / (256 * 1024)).max(1) as usize;
    k.div_ceil(2).max(1) * 2
}

/// Runs the sweep for explicit node counts and message sizes (serially).
pub fn run_with(ps: &[usize], ns: &[ByteSize]) -> Vec<Row> {
    run_with_threads(ps, ns, 1)
}

/// [`run_with`] fanned out over `threads` workers via
/// [`ccube_sim::sweep()`]: each `(P, N)` grid point (three simulations) is
/// one sweep point, reassembled in grid order.
pub fn run_with_threads(ps: &[usize], ns: &[ByteSize], threads: usize) -> Vec<Row> {
    run_with_threads_net(ps, ns, threads, ccube_sim::NetworkModel::ChannelApprox)
}

/// [`run_with_threads`] under an explicit network model (`ccube
/// scaleout --fabric switch` runs the sweep on the componentized switch
/// fabric; a passthrough fabric reproduces the defaults).
pub fn run_with_threads_net(
    ps: &[usize],
    ns: &[ByteSize],
    threads: usize,
    network: ccube_sim::NetworkModel,
) -> Vec<Row> {
    let points: Vec<(usize, ByteSize)> = ps
        .iter()
        .flat_map(|&p| ns.iter().map(move |&n| (p, n)))
        .collect();
    ccube_sim::sweep(&points, threads, |_, &(p, n)| {
        let dt = DoubleBinaryTree::new(p).expect("p >= 2");
        let k = chunk_count(n);
        let chunking = Chunking::even(n, k);
        let ring = ring_allreduce(p, n);
        let c1 = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let b = tree_allreduce(dt.trees(), &chunking, Overlap::None);
        let ring_report = sim_on(p, &ring, network);
        let c1_report = sim_on(p, &c1, network);
        let b_report = sim_on(p, &b, network);
        Row {
            p,
            n,
            k,
            t_ring: ring_report.makespan(),
            t_c1: c1_report.makespan(),
            t_b: b_report.makespan(),
            c1_over_ring: ring_report.makespan() / c1_report.makespan(),
            turnaround_speedup: b_report.turnaround() / c1_report.turnaround(),
        }
    })
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out =
        String::from("p,bytes,k,t_ring_us,t_c1_us,t_b_us,c1_over_ring,turnaround_speedup\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.2},{:.2},{:.2},{:.4},{:.3}\n",
            r.p,
            r.n.as_u64(),
            r.k,
            r.t_ring.as_micros(),
            r.t_c1.as_micros(),
            r.t_b.as_micros(),
            r.c1_over_ring,
            r.turnaround_speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Row> {
        run_with(
            &[16, 64, 128],
            &[ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(64)],
        )
    }

    fn at(rows: &[Row], p: usize, n: ByteSize) -> &Row {
        rows.iter().find(|r| r.p == p && r.n == n).unwrap()
    }

    #[test]
    fn small_messages_give_c1_an_order_of_magnitude() {
        // Paper: "For small data size (i.e., 16kB, 1MB), C1 provides up
        // to 20x improvement ... since latency dominates".
        let rows = grid();
        let r = at(&rows, 128, ByteSize::kib(16));
        assert!(r.c1_over_ring > 5.0, "got {:.2}", r.c1_over_ring);
    }

    #[test]
    fn large_messages_shrink_the_benefit() {
        // Paper: "as data size increases (i.e., 64MB), the benefit of C1
        // decreases".
        let rows = grid();
        for &p in &[16usize, 64] {
            let small = at(&rows, p, ByteSize::kib(16)).c1_over_ring;
            let large = at(&rows, p, ByteSize::mib(64)).c1_over_ring;
            assert!(large < small, "P={p}: {small:.2} -> {large:.2}");
        }
    }

    #[test]
    fn c1_advantage_grows_with_node_count() {
        // For latency-sensitive message sizes the tree's O(log P) step
        // count pulls ahead of the ring's O(P) as nodes are added.
        let rows = grid();
        for &n in &[ByteSize::kib(16), ByteSize::mib(1)] {
            let small = at(&rows, 16, n).c1_over_ring;
            let large = at(&rows, 128, n).c1_over_ring;
            assert!(large > small, "N={n}: {small:.2} -> {large:.2}");
        }
        // Even at 64 MiB (bandwidth-bound, where the ring is optimal)
        // the ring's edge stops growing as the node count rises — the
        // crossover the sweep shows beyond P=512.
        let r64 = at(&rows, 64, ByteSize::mib(64)).c1_over_ring;
        let r128 = at(&rows, 128, ByteSize::mib(64)).c1_over_ring;
        assert!(r128 >= r64 * 0.95, "64 MiB: {r64:.2} -> {r128:.2}");
    }

    #[test]
    fn turnaround_speedup_explodes_with_message_size() {
        // Paper Fig. 14(b): no benefit for small data (few chunks), huge
        // benefit (tens of x) once chunk counts grow.
        let rows = grid();
        let small = at(&rows, 64, ByteSize::kib(16)).turnaround_speedup;
        let large = at(&rows, 64, ByteSize::mib(64)).turnaround_speedup;
        assert!(small < 3.0, "small-message speedup {small:.2}");
        assert!(large > 10.0, "large-message speedup {large:.2}");
    }
}
