//! Fig. 4 — ring vs tree AllReduce cost-model comparison over (P, N).

use ccube_collectives::cost::{t_ring, t_tree, CostParams};
use ccube_topology::ByteSize;
use std::fmt;

/// One grid point of Fig. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Number of processors.
    pub p: usize,
    /// Message size.
    pub n: ByteSize,
    /// `T_ring / T_tree` — above 1.0 the tree algorithm wins.
    pub ring_over_tree: f64,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={:<5} N={:<10} ratio={:.3}",
            self.p,
            format!("{}", self.n),
            self.ring_over_tree
        )
    }
}

/// Default sweep: P in powers of two up to 1024, N from 16 KiB to
/// 256 MiB, with the α/β parameters of the NCCL 2.4 scale-out blog the
/// paper cites.
pub fn run() -> Vec<Row> {
    let ps: Vec<usize> = (1..=10).map(|e| 1usize << e).collect();
    let ns = [
        ByteSize::kib(16),
        ByteSize::kib(256),
        ByteSize::mib(1),
        ByteSize::mib(16),
        ByteSize::mib(64),
        ByteSize::mib(256),
    ];
    run_with(&CostParams::nccl_blog(), &ps, &ns)
}

/// Runs the sweep with explicit parameters.
pub fn run_with(params: &CostParams, ps: &[usize], ns: &[ByteSize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in ps {
        for &n in ns {
            rows.push(Row {
                p,
                n,
                ring_over_tree: t_ring(params, p, n) / t_tree(params, p, n),
            });
        }
    }
    rows
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("p,bytes,ring_over_tree\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.4}\n",
            r.p,
            r.n.as_u64(),
            r.ring_over_tree
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(rows: &[Row], p: usize, n: ByteSize) -> f64 {
        rows.iter()
            .find(|r| r.p == p && r.n == n)
            .unwrap()
            .ring_over_tree
    }

    #[test]
    fn small_messages_favor_tree() {
        let rows = run();
        assert!(at(&rows, 64, ByteSize::kib(16)) > 1.0);
        assert!(at(&rows, 1024, ByteSize::kib(16)) > 5.0);
    }

    #[test]
    fn large_messages_small_scale_favor_ring_modestly() {
        // Paper: ring wins "by up to 14%" for large messages at smaller
        // node counts. At P=8 the ring moves 2(P-1)/P = 1.75 βN against
        // the tree's 2 βN, a ~12% edge.
        let rows = run();
        let r = at(&rows, 8, ByteSize::mib(256));
        assert!(r < 1.0, "tree should lose here, ratio {r}");
        assert!(r > 0.80, "ring advantage should be modest, ratio {r}");
    }

    #[test]
    fn tree_advantage_grows_with_scale() {
        let rows = run();
        for n in [ByteSize::kib(16), ByteSize::mib(64)] {
            let small = at(&rows, 4, n);
            let large = at(&rows, 1024, n);
            assert!(large > small, "N={n}: {small} -> {large}");
        }
    }

    #[test]
    fn crossover_exists_for_large_messages() {
        // For 256 MiB the ring wins at small P but the tree overtakes it
        // as P grows — the crossover of Fig. 4.
        let rows = run();
        let n = ByteSize::mib(256);
        assert!(at(&rows, 2, n) < 1.0);
        assert!(at(&rows, 1024, n) > 1.0);
    }
}
