//! Fig. 15 — performance of detour (forwarding) GPUs vs the rest.
//!
//! On the DGX-1, two GPUs run persistent forwarding kernels for the
//! detour routes (§IV-A). Persistent kernels hold their SMs for the
//! whole run, so a detour GPU loses a fixed slice of compute
//! throughput — the paper measures a 3–4% end-to-end loss on the
//! forwarders and none elsewhere.
//!
//! Model: each forwarding kernel occupies [`SMS_PER_FORWARD_KERNEL`] of
//! the V100's [`TOTAL_SMS`] streaming multiprocessors; a GPU forwarding
//! both directions of a detour runs two kernels. Its compute time
//! stretches by `1 / (1 - occupied_fraction)` while communication time is
//! unchanged (the sim already charges the channel time).

use crate::pipeline::{Mode, TrainingPipeline};
use ccube_collectives::cost::{k_opt, CostParams};
use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
use ccube_sim::{simulate, SimOptions};
use ccube_topology::{dgx1, GpuId, Seconds};
use std::fmt;

/// SMs a single persistent forwarding kernel occupies.
pub const SMS_PER_FORWARD_KERNEL: f64 = 1.5;

/// Streaming multiprocessors on a V100.
pub const TOTAL_SMS: f64 = 80.0;

/// One bar of Fig. 15.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Physical GPU.
    pub gpu: u32,
    /// Number of forwarding kernels resident on this GPU.
    pub forward_kernels: usize,
    /// Channel-forwarding busy time accumulated during one AllReduce.
    pub forwarding_busy: Seconds,
    /// Per-GPU performance normalized to a non-detour GPU (1.0).
    pub normalized_perf: f64,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gpu{} kernels={} busy={} perf={:.3}",
            self.gpu, self.forward_kernels, self.forwarding_busy, self.normalized_perf
        )
    }
}

/// Default run: ResNet-50 at batch 64, high bandwidth (the paper's
/// Fig. 15 configuration).
pub fn run() -> Vec<Row> {
    run_with(64)
}

/// Runs the per-GPU comparison at an explicit batch size.
pub fn run_with(batch: usize) -> Vec<Row> {
    run_with_net(batch, ccube_sim::NetworkModel::ChannelApprox)
}

/// [`run_with`] under an explicit network model.
pub fn run_with_net(batch: usize, network: ccube_sim::NetworkModel) -> Vec<Row> {
    let net = ccube_dnn::resnet50();
    let pipeline = TrainingPipeline::dgx1(&net, batch);
    let report = pipeline.iteration(Mode::CCube);
    let t_iter = report.t_iter;
    let t_compute = report.t_fwd + report.t_bwd;

    // Which GPUs forward, and how much channel time they spend, comes
    // from simulating the overlapped double tree on the DGX-1.
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let params = CostParams::nvlink();
    let n = net.total_param_bytes();
    let k = k_opt(&params, 8, n).div_ceil(2).max(1) * 2;
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(n, k),
        Overlap::ReductionBroadcast,
    );
    let emb = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
    let sim = simulate(
        &topo,
        &s,
        &emb,
        &SimOptions::default().with_network(network),
    )
    .expect("simulates");
    let kernels = emb.forwarding_load();

    (0..8u32)
        .map(|g| {
            let forward_kernels = kernels.get(&GpuId(g)).copied().unwrap_or(0);
            let occupied = forward_kernels as f64 * SMS_PER_FORWARD_KERNEL / TOTAL_SMS;
            let slow = 1.0 / (1.0 - occupied);
            let t_gpu = t_iter + t_compute * (slow - 1.0);
            Row {
                gpu: g,
                forward_kernels,
                forwarding_busy: sim
                    .forwarding_busy()
                    .get(&GpuId(g))
                    .copied()
                    .unwrap_or(Seconds::ZERO),
                normalized_perf: t_iter / t_gpu,
            }
        })
        .collect()
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("gpu,forward_kernels,forwarding_busy_us,normalized_perf\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.2},{:.4}\n",
            r.gpu,
            r.forward_kernels,
            r.forwarding_busy.as_micros(),
            r.normalized_perf
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_two_detour_gpus_lose_3_to_4_percent() {
        let rows = run();
        let detour: Vec<&Row> = rows.iter().filter(|r| r.forward_kernels > 0).collect();
        let clean: Vec<&Row> = rows.iter().filter(|r| r.forward_kernels == 0).collect();
        assert_eq!(detour.len(), 2, "paper uses two forwarding GPUs");
        assert_eq!(clean.len(), 6);
        for r in &clean {
            assert!((r.normalized_perf - 1.0).abs() < 1e-12);
            assert!(r.forwarding_busy.is_zero());
        }
        for r in &detour {
            let loss = 1.0 - r.normalized_perf;
            assert!(
                (0.02..=0.05).contains(&loss),
                "gpu{} loss {:.3}",
                r.gpu,
                loss
            );
            assert!(r.forwarding_busy > Seconds::ZERO);
        }
    }

    #[test]
    fn loss_is_batch_insensitive() {
        // Persistent kernels cost a fixed compute fraction, so the loss
        // barely moves with batch size.
        let small = run_with(16);
        let large = run_with(128);
        let loss = |rows: &[Row]| 1.0 - rows.iter().map(|r| r.normalized_perf).fold(1.0, f64::min);
        assert!((loss(&small) - loss(&large)).abs() < 0.02);
    }
}
