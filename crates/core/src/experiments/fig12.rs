//! Fig. 12 — benefit of communication overlap (C1 over B) on the DGX-1,
//! measured by the discrete-event simulator and compared against the
//! §II-C cost model.

use ccube_collectives::cost::{self, k_opt, t_double_tree_chunked, t_overlapped_double_chunked};
use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
use ccube_sim::{simulate, SimOptions};
use ccube_topology::{dgx1, ByteSize, Seconds};
use std::fmt;

/// One data-size point of Fig. 12.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// AllReduce message size.
    pub n: ByteSize,
    /// Chunk count used (Eq. 4, rounded to the tree pair).
    pub k: usize,
    /// Simulated baseline double-tree time.
    pub t_baseline: Seconds,
    /// Simulated overlapped double-tree time.
    pub t_overlapped: Seconds,
    /// Simulated improvement of C1 over B (`t_b/t_c1 - 1`).
    pub improvement_sim: f64,
    /// Cost-model improvement (Eq. 3-family) for Fig. 12(b).
    pub improvement_model: f64,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={:<10} K={:<4} B={} C1={} sim=+{:.1}% model=+{:.1}%",
            format!("{}", self.n),
            self.k,
            self.t_baseline,
            self.t_overlapped,
            self.improvement_sim * 100.0,
            self.improvement_model * 100.0
        )
    }
}

/// Default sweep over the paper's data-size range.
pub fn run() -> Vec<Row> {
    run_net(ccube_sim::NetworkModel::ChannelApprox)
}

/// [`run`] under an explicit network model.
pub fn run_net(network: ccube_sim::NetworkModel) -> Vec<Row> {
    let ns = [
        ByteSize::mib(4),
        ByteSize::mib(16),
        ByteSize::mib(64),
        ByteSize::mib(128),
        ByteSize::mib(256),
    ];
    run_with_threads_net(&ns, 1, network)
}

/// Runs the comparison for explicit message sizes (serially).
///
/// # Panics
///
/// Panics if the DGX-1 embedding or simulation fails — both are
/// deterministic and covered by tests.
pub fn run_with(ns: &[ByteSize]) -> Vec<Row> {
    run_with_threads(ns, 1)
}

/// [`run_with`] fanned out over `threads` workers via
/// [`ccube_sim::sweep()`]: each message size is one independent sweep
/// point, and the result is bit-identical to the serial run.
pub fn run_with_threads(ns: &[ByteSize], threads: usize) -> Vec<Row> {
    run_with_threads_net(ns, threads, ccube_sim::NetworkModel::ChannelApprox)
}

/// [`run_with_threads`] under an explicit network model (`ccube figures
/// --fabric switch` reruns the DES-backed figures on the componentized
/// switch fabric; a passthrough fabric reproduces the defaults).
pub fn run_with_threads_net(
    ns: &[ByteSize],
    threads: usize,
    network: ccube_sim::NetworkModel,
) -> Vec<Row> {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let params = cost::CostParams::nvlink();
    ccube_sim::sweep(ns, threads, |_, &n| {
        let k = k_opt(&params, 8, n).div_ceil(2).max(1) * 2;
        let chunking = Chunking::even(n, k);
        let run_one = |overlap| {
            let s = tree_allreduce(dt.trees(), &chunking, overlap);
            let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
            simulate(&topo, &s, &e, &SimOptions::default().with_network(network))
                .expect("simulates")
                .makespan()
        };
        let t_baseline = run_one(Overlap::None);
        let t_overlapped = run_one(Overlap::ReductionBroadcast);
        let model_b = t_double_tree_chunked(&params, 8, n, k);
        let model_o = t_overlapped_double_chunked(&params, 8, n, k);
        Row {
            n,
            k,
            t_baseline,
            t_overlapped,
            improvement_sim: t_baseline / t_overlapped - 1.0,
            improvement_model: model_b / model_o - 1.0,
        }
    })
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out =
        String::from("bytes,k,t_baseline_us,t_overlapped_us,improvement_sim,improvement_model\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.2},{:.2},{:.4},{:.4}\n",
            r.n.as_u64(),
            r.k,
            r.t_baseline.as_micros(),
            r.t_overlapped.as_micros(),
            r.improvement_sim,
            r.improvement_model
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_gains_match_paper_band() {
        // Paper Fig. 12(a): 75% improvement at 64 MB, up to 80% beyond.
        let rows = run_with(&[ByteSize::mib(64), ByteSize::mib(256)]);
        for r in &rows {
            assert!(
                (0.55..1.0).contains(&r.improvement_sim),
                "N={}: sim improvement {:.2}",
                r.n,
                r.improvement_sim
            );
        }
        // benefit grows (or holds) with message size
        assert!(rows[1].improvement_sim >= rows[0].improvement_sim - 0.05);
    }

    #[test]
    fn sim_matches_model_closely() {
        // Paper Fig. 12(b): "the expected benefit of C1 over B from
        // modeling closely matches the measured benefits".
        for r in run_with(&[ByteSize::mib(16), ByteSize::mib(64)]) {
            let gap = (r.improvement_sim - r.improvement_model).abs();
            assert!(
                gap < 0.25,
                "N={}: sim {:.3} vs model {:.3}",
                r.n,
                r.improvement_sim,
                r.improvement_model
            );
        }
    }
}
