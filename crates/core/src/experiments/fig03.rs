//! Fig. 3 — AllReduce performance vs invocation granularity (one-shot,
//! layer-wise, slicing) for ResNet-50's gradients.

use ccube_collectives::cost::{CostParams, GranularityModel};
use ccube_dnn::resnet50;
use ccube_topology::{Bandwidth, ByteSize, Seconds};
use std::fmt;

/// One bar of Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Scheme name (`one-shot`, `layer-wise`, `slicing-4x`).
    pub scheme: &'static str,
    /// AllReduce invocations per iteration.
    pub invocations: usize,
    /// Effective bandwidth in GB/s.
    pub effective_gbps: f64,
    /// Bandwidth normalized to the one-shot scheme (1.0 for one-shot).
    pub relative: f64,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>5} invocations {:>7.2} GB/s (x{:.2})",
            self.scheme, self.invocations, self.effective_gbps, self.relative
        )
    }
}

/// The NCCL-on-DGX-1 environment of the measurement: an effective
/// multi-ring bandwidth with per-invocation launch overhead.
pub fn default_model() -> GranularityModel {
    GranularityModel::new(
        CostParams::new(Seconds::from_micros(1.0), Bandwidth::gb_per_sec(60.0)),
        Seconds::from_micros(5.0),
        8,
    )
}

/// Runs the three schemes over ResNet-50's per-layer gradient tensors.
pub fn run() -> Vec<Row> {
    run_with(&default_model())
}

/// Runs the three schemes under an explicit model.
pub fn run_with(model: &GranularityModel) -> Vec<Row> {
    let net = resnet50();
    let one_shot = vec![net.total_param_bytes()];
    // "Layer-wise" launches one AllReduce per gradient *tensor*: a conv
    // layer contributes its weight plus two batch-norm tensors, a fully
    // connected layer its weight plus bias — 161 tensors for ResNet-50,
    // matching the real framework's tensor count.
    let layer_wise: Vec<ByteSize> = net.layers().iter().flat_map(|l| l.tensor_bytes()).collect();
    let slicing: Vec<ByteSize> = layer_wise.iter().flat_map(|b| b.split(4)).collect();

    let schemes: [(&'static str, Vec<ByteSize>); 3] = [
        ("one-shot", one_shot),
        ("layer-wise", layer_wise),
        ("slicing-4x", slicing),
    ];
    let base = model.effective_bandwidth(&schemes[0].1).as_gb_per_sec();
    schemes
        .iter()
        .map(|(name, messages)| {
            let bw = model.effective_bandwidth(messages).as_gb_per_sec();
            Row {
                scheme: name,
                invocations: messages.len(),
                effective_gbps: bw,
                relative: bw / base,
            }
        })
        .collect()
}

/// Renders rows as CSV.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("scheme,invocations,effective_gbps,relative_to_one_shot\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.4}\n",
            r.scheme, r.invocations, r.effective_gbps, r.relative
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_losses_match_paper() {
        let rows = run();
        assert_eq!(rows[0].scheme, "one-shot");
        assert!((rows[0].relative - 1.0).abs() < 1e-12);
        // layer-wise: ~2x loss (paper: "approximately 2x").
        let layer_loss = 1.0 / rows[1].relative;
        assert!((1.5..3.2).contains(&layer_loss), "layer loss {layer_loss}");
        // slicing: >4x loss (paper: "over 4x").
        let slice_loss = 1.0 / rows[2].relative;
        assert!(slice_loss > 4.0, "slice loss {slice_loss}");
        // slicing is strictly worse than layer-wise
        assert!(rows[2].effective_gbps < rows[1].effective_gbps);
    }

    #[test]
    fn invocation_counts_follow_resnet_structure() {
        let rows = run();
        assert_eq!(rows[0].invocations, 1);
        // 53 convs x 3 tensors + 1 fc x 2 tensors = 161, the real
        // gradient-tensor count of ResNet-50.
        assert_eq!(rows[1].invocations, 161);
        assert_eq!(rows[2].invocations, 161 * 4);
    }
}
