//! Per-chunk completion-time models.
//!
//! Computation chaining needs to know *when each gradient chunk has
//! finished its AllReduce* (relative to the start of communication).
//! This module provides those arrival curves from two sources:
//!
//! * **analytic** — the staged pipeline model validated against the
//!   unit-step executor (`ccube-collectives::verify`): with step time
//!   `t_s = α + β·chunk`, tree depth `d` and `K_t` chunks per tree, the
//!   per-tree chunk `j` completes everywhere at step `2d + K_t - 1 + j`
//!   for the baseline tree and `2d + j` for the overlapped tree;
//! * **simulated** — the measured chunk completions of a
//!   [`SimReport`].

use ccube_collectives::cost::CostParams;
use ccube_collectives::{BinaryTree, ChunkId, Overlap};
use ccube_sim::SimReport;
use ccube_topology::{ByteSize, Seconds};

/// Completion time of every global chunk, in chunk order, measured from
/// the start of the collective.
///
/// # Examples
///
/// ```
/// use ccube::arrivals::ChunkArrivals;
/// use ccube_collectives::cost::CostParams;
/// use ccube_collectives::Overlap;
/// use ccube_topology::ByteSize;
///
/// let params = CostParams::nvlink();
/// let over = ChunkArrivals::analytic_tree(8, 2, 32, ByteSize::mib(1), &params,
///                                         Overlap::ReductionBroadcast);
/// let base = ChunkArrivals::analytic_tree(8, 2, 32, ByteSize::mib(1), &params,
///                                         Overlap::None);
/// // The overlapped tree returns the first chunk much earlier:
/// // 2·depth steps instead of 2·depth + K_tree − 1.
/// assert!(over.first() * 3.0 < base.first());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkArrivals {
    times: Vec<Seconds>,
}

impl ChunkArrivals {
    /// Builds arrivals from explicit times.
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty.
    pub fn new(times: Vec<Seconds>) -> Self {
        assert!(!times.is_empty(), "need at least one chunk");
        ChunkArrivals { times }
    }

    /// The staged analytic model for a (multi-)tree AllReduce on `p`
    /// ranks with `num_trees` trees, `k` global chunks of `chunk_bytes`
    /// each, and per-link cost `params`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`, `num_trees` is zero, or `k` is zero.
    pub fn analytic_tree(
        p: usize,
        num_trees: usize,
        k: usize,
        chunk_bytes: ByteSize,
        params: &CostParams,
        overlap: Overlap,
    ) -> Self {
        assert!(p >= 2 && num_trees > 0 && k > 0);
        let depth = BinaryTree::inorder(p)
            .expect("p >= 2 always builds")
            .depth()
            .max(1);
        let t_s = params.step_time(chunk_bytes).as_secs_f64();
        let times = (0..k)
            .map(|c| {
                let tree = c % num_trees;
                let j = c / num_trees;
                // chunks of this tree: ceil((k - tree) / num_trees)
                let kt = (k - tree).div_ceil(num_trees);
                let steps = match overlap {
                    Overlap::None => 2 * depth + kt - 1 + j,
                    Overlap::ReductionBroadcast => 2 * depth + j,
                };
                Seconds::new(steps as f64 * t_s)
            })
            .collect();
        ChunkArrivals { times }
    }

    /// Ring arrivals: nothing is usable before the whole AllReduce
    /// finishes (the ring's Reduce-Scatter leaves each rank with a
    /// *different* chunk, so no in-order early release exists —
    /// Observation #3's contrast).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn ring_uniform(total: Seconds, k: usize) -> Self {
        assert!(k > 0);
        ChunkArrivals {
            times: vec![total; k],
        }
    }

    /// Arrivals measured by the discrete-event simulator.
    pub fn from_sim(report: &SimReport) -> Self {
        ChunkArrivals {
            times: report.chunk_completions().to_vec(),
        }
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.times.len()
    }

    /// Arrival time of one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn at(&self, chunk: ChunkId) -> Seconds {
        self.times[chunk.index()]
    }

    /// All arrivals in chunk order.
    pub fn times(&self) -> &[Seconds] {
        &self.times
    }

    /// Arrival of the first chunk — the gradient turnaround time.
    pub fn first(&self) -> Seconds {
        self.times.iter().copied().min().expect("non-empty")
    }

    /// Arrival of the last chunk — the collective's makespan.
    pub fn last(&self) -> Seconds {
        self.times.iter().copied().max().expect("non-empty")
    }

    /// When the leading `upper` chunks (`0..upper`) have all arrived —
    /// the dequeue gate of a layer whose layer-chunk-table entry is
    /// `upper`. Zero if `upper` is zero.
    ///
    /// # Panics
    ///
    /// Panics if `upper` exceeds the chunk count.
    pub fn ready_after(&self, upper: usize) -> Seconds {
        assert!(upper <= self.times.len(), "table entry beyond chunk count");
        self.times[..upper]
            .iter()
            .copied()
            .max()
            .unwrap_or(Seconds::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams::nvlink()
    }

    #[test]
    fn analytic_matches_unit_step_executor() {
        // Cross-validate the closed form against the unit-step replay of
        // the actual schedules.
        use ccube_collectives::verify::{execute_steps, ChannelKeying};
        use ccube_collectives::{tree_allreduce, Chunking};

        for (p, k, overlap) in [
            (4usize, 4usize, Overlap::None),
            (4, 4, Overlap::ReductionBroadcast),
            (8, 12, Overlap::None),
            (8, 12, Overlap::ReductionBroadcast),
        ] {
            let tree = BinaryTree::inorder(p).unwrap();
            let chunk_bytes = ByteSize::kib(64);
            let chunking = Chunking::even(ByteSize::new(chunk_bytes.as_u64() * k as u64), k);
            let s = tree_allreduce(std::slice::from_ref(&tree), &chunking, overlap);
            let steps = execute_steps(&s, ChannelKeying::PerTree).unwrap();
            let model = ChunkArrivals::analytic_tree(p, 1, k, chunk_bytes, &params(), overlap);
            let t_s = params().step_time(chunk_bytes).as_secs_f64();
            for c in 0..k {
                let model_steps = (model.times()[c].as_secs_f64() / t_s).round() as usize;
                assert_eq!(
                    model_steps, steps.chunk_complete_step[c],
                    "p={p} k={k} chunk={c} overlap={overlap:?}"
                );
            }
        }
    }

    #[test]
    fn overlapped_arrivals_are_linear_in_chunk() {
        let a = ChunkArrivals::analytic_tree(
            8,
            1,
            16,
            ByteSize::mib(1),
            &params(),
            Overlap::ReductionBroadcast,
        );
        let t = a.times();
        let d0 = t[1] - t[0];
        for w in t.windows(2) {
            assert!((w[1] - w[0] - d0).as_secs_f64().abs() < 1e-12);
        }
    }

    #[test]
    fn baseline_first_chunk_waits_for_reduction() {
        let base =
            ChunkArrivals::analytic_tree(8, 2, 64, ByteSize::mib(1), &params(), Overlap::None);
        let over = ChunkArrivals::analytic_tree(
            8,
            2,
            64,
            ByteSize::mib(1),
            &params(),
            Overlap::ReductionBroadcast,
        );
        // identical makespans up to one pipeline fill, but wildly
        // different turnaround
        assert!(base.first() / over.first() > 4.0);
        assert!(base.last() > over.last());
    }

    #[test]
    fn ready_after_is_monotone() {
        let a = ChunkArrivals::analytic_tree(
            8,
            2,
            10,
            ByteSize::mib(1),
            &params(),
            Overlap::ReductionBroadcast,
        );
        assert_eq!(a.ready_after(0), Seconds::ZERO);
        for u in 1..=10 {
            assert!(a.ready_after(u) >= a.ready_after(u - 1));
        }
        assert_eq!(a.ready_after(10), a.last());
    }

    #[test]
    fn ring_uniform_blocks_everything_until_the_end() {
        let a = ChunkArrivals::ring_uniform(Seconds::from_millis(3.0), 8);
        assert_eq!(a.first(), a.last());
        assert_eq!(a.ready_after(1), a.last());
    }

    #[test]
    #[should_panic(expected = "beyond chunk count")]
    fn ready_after_bounds_checked() {
        let a = ChunkArrivals::ring_uniform(Seconds::from_millis(1.0), 4);
        let _ = a.ready_after(5);
    }
}
