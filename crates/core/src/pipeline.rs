//! The training-iteration pipeline: the five execution modes of the
//! paper's evaluation (Fig. 13).
//!
//! One data-parallel training iteration is `forward → backward →
//! AllReduce(gradients) → (next) forward`. The paper's modes differ in
//! how the AllReduce relates to the computation:
//!
//! | mode | collective | chained with next forward? |
//! |------|-----------|-----------------------------|
//! | `B`  | baseline double tree | no |
//! | `C1` | overlapped double tree | no |
//! | `C2` | baseline double tree | **yes** (gradient queuing) |
//! | `CC` | overlapped double tree | **yes** — C-Cube |
//! | `R`  | NCCL ring | impossible (out-of-order delivery) |
//!
//! For the unchained modes the iteration time is simply
//! `T_fwd + T_bwd + T_comm`. For the chained modes, communication starts
//! when backward ends ("one-shot") and the next iteration's forward pass
//! runs layer-by-layer as gradients arrive:
//! `s_i = max(e_{i-1}, ready_i)`, `e_i = s_i + f_i` — any positive
//! `ready_i - e_{i-1}` is a **bubble** (Fig. 16).

use crate::arrivals::ChunkArrivals;
use ccube_collectives::cost::{self, CostParams};
use ccube_collectives::Overlap;
use ccube_dnn::{ComputeModel, NetworkModel};
use ccube_topology::{ByteSize, Seconds};
use std::fmt;

/// The execution mode of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// `B`: baseline (non-overlapped) double-tree AllReduce.
    Baseline,
    /// `C1`: overlapped double tree, no computation chaining.
    OverlappedTree,
    /// `C2`: computation chaining over the baseline double tree.
    Chained,
    /// `CC`: C-Cube — overlapped tree + computation chaining.
    CCube,
    /// `R`: NCCL-style ring.
    Ring,
    /// The Fig. 2(b) strategy C-Cube argues against: layer-wise
    /// AllReduce overlapped with the *current* iteration's backward pass
    /// (Horovod/PyTorch-DDP style). Not part of the paper's five-way
    /// comparison ([`Mode::ALL`]); evaluated by
    /// [`TrainingPipeline::backward_overlap_iteration`].
    BackwardOverlap,
}

impl Mode {
    /// All five modes in the paper's plotting order.
    pub const ALL: [Mode; 5] = [
        Mode::Baseline,
        Mode::OverlappedTree,
        Mode::Chained,
        Mode::Ring,
        Mode::CCube,
    ];

    /// The paper's one/two-letter label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "B",
            Mode::OverlappedTree => "C1",
            Mode::Chained => "C2",
            Mode::CCube => "CC",
            Mode::Ring => "R",
            Mode::BackwardOverlap => "BW",
        }
    }

    /// True if the mode chains communication with the next forward pass.
    pub fn is_chained(self) -> bool {
        matches!(self, Mode::Chained | Mode::CCube)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of the chained-forward recurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainedForward {
    /// Per-layer start times (relative to communication start).
    pub starts: Vec<Seconds>,
    /// Per-layer end times.
    pub ends: Vec<Seconds>,
    /// Per-layer bubble: time the layer waited on gradients after its
    /// predecessor finished.
    pub bubbles: Vec<Seconds>,
    /// When the whole forward pass finished.
    pub finish: Seconds,
}

impl ChainedForward {
    /// Total bubble time across layers.
    pub fn total_bubble(&self) -> Seconds {
        self.bubbles.iter().fold(Seconds::ZERO, |acc, &b| acc + b)
    }
}

/// Runs the chained-forward recurrence: layer `i` starts at
/// `max(end of layer i-1, arrival of its last gradient chunk)`.
///
/// `table[i]` is the layer-chunk-table entry (exclusive upper chunk
/// index) of layer `i`.
///
/// # Panics
///
/// Panics if `layer_fwd` and `table` differ in length or are empty.
pub fn chain_forward(
    layer_fwd: &[Seconds],
    table: &[usize],
    arrivals: &ChunkArrivals,
) -> ChainedForward {
    assert_eq!(layer_fwd.len(), table.len(), "layers and table must align");
    assert!(!layer_fwd.is_empty(), "need at least one layer");
    let mut starts = Vec::with_capacity(layer_fwd.len());
    let mut ends = Vec::with_capacity(layer_fwd.len());
    let mut bubbles = Vec::with_capacity(layer_fwd.len());
    let mut prev_end = Seconds::ZERO;
    for (i, &f) in layer_fwd.iter().enumerate() {
        let ready = arrivals.ready_after(table[i]);
        let start = prev_end.max(ready);
        bubbles.push(if ready > prev_end {
            ready - prev_end
        } else {
            Seconds::ZERO
        });
        starts.push(start);
        let end = start + f;
        ends.push(end);
        prev_end = end;
    }
    ChainedForward {
        finish: prev_end,
        starts,
        ends,
        bubbles,
    }
}

/// One iteration's timing under a given [`Mode`].
#[derive(Debug, Clone, PartialEq)]
pub struct IterationReport {
    /// The mode evaluated.
    pub mode: Mode,
    /// Forward time of the whole network.
    pub t_fwd: Seconds,
    /// Backward time.
    pub t_bwd: Seconds,
    /// AllReduce makespan.
    pub t_comm: Seconds,
    /// Gradient turnaround time (first chunk usable).
    pub turnaround: Seconds,
    /// Iteration time (steady state).
    pub t_iter: Seconds,
    /// Total bubble time (chained modes only; zero otherwise).
    pub total_bubble: Seconds,
    /// `(T_fwd + T_bwd) / T_iter` — the paper's normalized performance
    /// (1.0 = ideal linear speedup, communication entirely hidden).
    pub normalized_perf: f64,
}

/// A training pipeline: a network profile bound to a machine
/// communication model.
///
/// # Examples
///
/// ```
/// use ccube::pipeline::{Mode, TrainingPipeline};
///
/// let p = TrainingPipeline::dgx1(&ccube_dnn::resnet50(), 64);
/// let r = p.iteration(Mode::CCube);
/// assert!(r.normalized_perf > 0.5 && r.normalized_perf <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TrainingPipeline {
    layer_fwd: Vec<Seconds>,
    layer_grads: Vec<ByteSize>,
    t_bwd: Seconds,
    /// Per-link cost parameters (one tree uses one link per hop).
    link: CostParams,
    /// Ring cost parameters: NCCL builds several parallel rings on the
    /// DGX-1, so the ring sees a multiple of the link bandwidth.
    ring: CostParams,
    p: usize,
    num_trees: usize,
}

impl TrainingPipeline {
    /// Builds a pipeline from explicit per-layer profiles.
    ///
    /// # Panics
    ///
    /// Panics if the layer vectors are empty or differ in length, or
    /// `p < 2`.
    pub fn new(
        layer_fwd: Vec<Seconds>,
        layer_grads: Vec<ByteSize>,
        t_bwd: Seconds,
        link: CostParams,
        ring: CostParams,
        p: usize,
        num_trees: usize,
    ) -> Self {
        assert!(!layer_fwd.is_empty(), "need at least one layer");
        assert_eq!(layer_fwd.len(), layer_grads.len());
        assert!(p >= 2 && num_trees >= 1);
        TrainingPipeline {
            layer_fwd,
            layer_grads,
            t_bwd,
            link,
            ring,
            p,
            num_trees,
        }
    }

    /// Number of parallel rings the ring baseline is granted on the
    /// DGX-1 (NCCL builds multiple NVLink rings to use the aggregate
    /// bandwidth; the double tree only ever drives two links per GPU).
    pub const DGX1_RING_CHANNELS: f64 = 4.0;

    /// A DGX-1-like pipeline: 8 GPUs, NVLink α/β, double tree, V100
    /// compute, at the given per-GPU batch size.
    pub fn dgx1(net: &NetworkModel, batch: usize) -> Self {
        Self::dgx1_with(net, batch, &ComputeModel::v100(), 1.0)
    }

    /// A DGX-1-like pipeline with an explicit compute model and a
    /// bandwidth scale (`1.0` = the paper's "high bandwidth", `0.25` =
    /// "low bandwidth").
    pub fn dgx1_with(
        net: &NetworkModel,
        batch: usize,
        compute: &ComputeModel,
        bandwidth_scale: f64,
    ) -> Self {
        let link = CostParams::nvlink().scaled_bandwidth(bandwidth_scale);
        let ring = CostParams::new(
            link.alpha(),
            link.bandwidth().scaled(Self::DGX1_RING_CHANNELS),
        );
        TrainingPipeline::new(
            net.layer_fwd_times(batch, compute),
            net.layer_param_bytes(),
            net.bwd_time(batch, compute),
            link,
            ring,
            8,
            2,
        )
    }

    /// A pipeline from a synthetic pattern (Fig. 16 cases) on a DGX-1
    /// communication model.
    pub fn from_pattern(pattern: &ccube_dnn::patterns::Pattern, p: usize) -> Self {
        let link = CostParams::nvlink();
        let ring = CostParams::new(
            link.alpha(),
            link.bandwidth().scaled(Self::DGX1_RING_CHANNELS),
        );
        let t_bwd = pattern.total_fwd_time() * 2.0;
        TrainingPipeline::new(
            pattern.fwd_times().to_vec(),
            pattern.grad_bytes().to_vec(),
            t_bwd,
            link,
            ring,
            p,
            2,
        )
    }

    /// Total gradient bytes.
    pub fn total_grads(&self) -> ByteSize {
        self.layer_grads.iter().copied().sum()
    }

    /// Total forward time.
    pub fn t_fwd(&self) -> Seconds {
        self.layer_fwd.iter().fold(Seconds::ZERO, |acc, &t| acc + t)
    }

    /// Per-layer forward times, input-side first.
    pub fn layer_fwd_times(&self) -> &[Seconds] {
        &self.layer_fwd
    }

    /// Per-layer gradient sizes, input-side first.
    pub fn layer_grad_bytes(&self) -> &[ByteSize] {
        &self.layer_grads
    }

    /// Backward-pass time.
    pub fn t_bwd(&self) -> Seconds {
        self.t_bwd
    }

    /// Ideal iteration time (communication-free): `T_fwd + T_bwd`.
    pub fn t_ideal(&self) -> Seconds {
        self.t_fwd() + self.t_bwd
    }

    /// The chunk count used for the tree collectives: Eq. 4's `K_opt`,
    /// rounded up to a multiple of the tree count.
    pub fn num_chunks(&self) -> usize {
        let k = cost::k_opt(&self.link, self.p, self.total_grads());
        k.div_ceil(self.num_trees).max(1) * self.num_trees
    }

    fn chunk_bytes(&self) -> ByteSize {
        let k = self.num_chunks() as u64;
        ByteSize::new(self.total_grads().as_u64().div_ceil(k))
    }

    /// The layer-chunk table for this pipeline's chunking.
    pub fn layer_chunk_table(&self) -> Vec<usize> {
        let chunk = self.chunk_bytes();
        let mut cum = 0u64;
        self.layer_grads
            .iter()
            .map(|g| {
                cum += g.as_u64();
                (cum.div_ceil(chunk.as_u64()) as usize).min(self.num_chunks())
            })
            .collect()
    }

    /// The chunk arrival curve of the tree collective in `overlap` mode.
    pub fn tree_arrivals(&self, overlap: Overlap) -> ChunkArrivals {
        ChunkArrivals::analytic_tree(
            self.p,
            self.num_trees,
            self.num_chunks(),
            self.chunk_bytes(),
            &self.link,
            overlap,
        )
    }

    /// The ring AllReduce time under the multi-ring bandwidth.
    pub fn ring_time(&self) -> Seconds {
        cost::t_ring(&self.ring, self.p, self.total_grads())
    }

    /// Evaluates one iteration under `mode`.
    pub fn iteration(&self, mode: Mode) -> IterationReport {
        let t_fwd = self.t_fwd();
        let ideal = self.t_ideal();
        if mode == Mode::BackwardOverlap {
            return self.backward_overlap_iteration(Seconds::from_micros(10.0));
        }
        let (t_comm, turnaround, t_iter, total_bubble) = match mode {
            Mode::BackwardOverlap => unreachable!("handled above"),
            Mode::Baseline | Mode::OverlappedTree => {
                let overlap = if mode == Mode::Baseline {
                    Overlap::None
                } else {
                    Overlap::ReductionBroadcast
                };
                let arr = self.tree_arrivals(overlap);
                let comm = arr.last();
                (comm, arr.first(), ideal + comm, Seconds::ZERO)
            }
            Mode::Ring => {
                let comm = self.ring_time();
                (comm, comm, ideal + comm, Seconds::ZERO)
            }
            Mode::Chained | Mode::CCube => {
                let overlap = if mode == Mode::Chained {
                    Overlap::None
                } else {
                    Overlap::ReductionBroadcast
                };
                let arr = self.tree_arrivals(overlap);
                let chain = chain_forward(&self.layer_fwd, &self.layer_chunk_table(), &arr);
                (
                    arr.last(),
                    arr.first(),
                    self.t_bwd + chain.finish,
                    chain.total_bubble(),
                )
            }
        };
        IterationReport {
            mode,
            t_fwd,
            t_bwd: self.t_bwd,
            t_comm,
            turnaround,
            t_iter,
            total_bubble,
            normalized_perf: ideal / t_iter,
        }
    }

    /// All five modes at once, in the paper's order.
    pub fn all_modes(&self) -> Vec<IterationReport> {
        Mode::ALL.iter().map(|&m| self.iteration(m)).collect()
    }

    /// The **backward-overlap** strategy of the paper's Fig. 2(b) — the
    /// Horovod/DDP approach C-Cube argues against: gradients are
    /// AllReduced layer-wise as backward produces them (layer L first,
    /// layer 1 last), overlapping communication with the *current*
    /// iteration's backward pass.
    ///
    /// Model: backward visits layers in reverse; layer `l`'s gradients
    /// become available when its backward step finishes; its AllReduce
    /// (multi-ring time for its bytes, plus `launch_overhead` per
    /// invocation — the Fig. 3 penalty of many small collectives)
    /// serializes on the network behind earlier layers'. The next
    /// iteration's forward pass starts only when layer 1's gradients —
    /// produced *last* and communicated *last* — are done:
    /// `T = max(bwd_end, comm_end) + T_fwd`.
    ///
    /// This quantifies the paper's §II-B argument: the final layer-1
    /// communication can never be hidden (it is both the last backward
    /// output and the first forward input), and the layer-wise launches
    /// erode bandwidth, so chaining with the *next forward pass* (CC)
    /// wins for CNN-shaped workloads.
    pub fn backward_overlap_iteration(&self, launch_overhead: Seconds) -> IterationReport {
        let t_fwd = self.t_fwd();
        let ideal = self.t_ideal();
        let layers = self.layer_fwd.len();
        // Per-layer backward time, proportional to the layer's forward
        // share of the total (bwd ≈ 2x fwd layer-wise).
        let total_fwd = t_fwd.as_secs_f64();
        let mut bwd_done = Seconds::ZERO;
        let mut comm_end = Seconds::ZERO;
        let mut first_layer_comm_end = Seconds::ZERO;
        for l in (0..layers).rev() {
            let share = if total_fwd > 0.0 {
                self.layer_fwd[l].as_secs_f64() / total_fwd
            } else {
                1.0 / layers as f64
            };
            bwd_done += self.t_bwd * share;
            let comm = launch_overhead + cost::t_ring(&self.ring, self.p, self.layer_grads[l]);
            comm_end = comm_end.max(bwd_done) + comm;
            if l == 0 {
                first_layer_comm_end = comm_end;
            }
        }
        let t_iter = bwd_done.max(comm_end) + t_fwd;
        IterationReport {
            mode: Mode::BackwardOverlap,
            t_fwd,
            t_bwd: self.t_bwd,
            t_comm: comm_end,
            turnaround: first_layer_comm_end,
            t_iter,
            total_bubble: Seconds::ZERO,
            normalized_perf: ideal / t_iter,
        }
    }

    /// Evaluates a chained iteration with *externally supplied* chunk
    /// arrivals (e.g. measured by the discrete-event simulator via
    /// [`ChunkArrivals::from_sim`]), instead of the analytic staged
    /// model. This is the hook for cross-validating the pipeline against
    /// the DES and for machines whose contention the closed form cannot
    /// capture.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` has fewer chunks than the pipeline's
    /// layer-chunk table requires.
    pub fn iteration_with_arrivals(&self, mode: Mode, arrivals: &ChunkArrivals) -> IterationReport {
        let t_fwd = self.t_fwd();
        let ideal = self.t_ideal();
        let (t_comm, turnaround, t_iter, total_bubble) = if mode.is_chained() {
            let mut table = self.layer_chunk_table();
            // Clamp the table to the supplied chunk count (a simulated
            // run may use a slightly different K than the analytic one).
            let k = arrivals.num_chunks();
            for upper in &mut table {
                *upper = (*upper).min(k);
            }
            if let Some(last) = table.last_mut() {
                *last = k;
            }
            let chain = chain_forward(&self.layer_fwd, &table, arrivals);
            (
                arrivals.last(),
                arrivals.first(),
                self.t_bwd + chain.finish,
                chain.total_bubble(),
            )
        } else {
            let comm = arrivals.last();
            (comm, arrivals.first(), ideal + comm, Seconds::ZERO)
        };
        IterationReport {
            mode,
            t_fwd,
            t_bwd: self.t_bwd,
            t_comm,
            turnaround,
            t_iter,
            total_bubble,
            normalized_perf: ideal / t_iter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_dnn::{patterns, resnet50, vgg16, zfnet};

    #[test]
    fn chain_forward_without_waiting_is_sum_of_layers() {
        let fwd = vec![Seconds::from_millis(1.0); 4];
        let arrivals = ChunkArrivals::new(vec![Seconds::ZERO; 4]);
        let chain = chain_forward(&fwd, &[1, 2, 3, 4], &arrivals);
        assert_eq!(chain.finish, Seconds::from_millis(4.0));
        assert_eq!(chain.total_bubble(), Seconds::ZERO);
    }

    #[test]
    fn chain_forward_bubbles_when_gradients_are_late() {
        let fwd = vec![Seconds::from_millis(1.0); 2];
        // layer 1's chunk arrives at t=5, long after layer 0 finished
        let arrivals = ChunkArrivals::new(vec![Seconds::ZERO, Seconds::from_millis(5.0)]);
        let chain = chain_forward(&fwd, &[1, 2], &arrivals);
        assert_eq!(chain.starts[1], Seconds::from_millis(5.0));
        assert_eq!(chain.bubbles[1], Seconds::from_millis(4.0));
        assert_eq!(chain.finish, Seconds::from_millis(6.0));
    }

    #[test]
    fn mode_ordering_matches_paper_on_resnet50() {
        let p = TrainingPipeline::dgx1(&resnet50(), 64);
        let b = p.iteration(Mode::Baseline);
        let c1 = p.iteration(Mode::OverlappedTree);
        let c2 = p.iteration(Mode::Chained);
        let cc = p.iteration(Mode::CCube);
        let r = p.iteration(Mode::Ring);
        // C1 beats B; CC beats everything; CC and C2 beat their
        // unchained counterparts.
        assert!(c1.t_iter < b.t_iter);
        assert!(c2.t_iter < b.t_iter);
        assert!(cc.t_iter < c1.t_iter);
        assert!(cc.t_iter < c2.t_iter);
        assert!(cc.t_iter <= r.t_iter);
        // Ring beats C1 on this small, bandwidth-rich system (the
        // paper's "R shows better performance than C1" point).
        assert!(r.t_iter < c1.t_iter);
    }

    #[test]
    fn ccube_efficiency_is_high_at_large_batch() {
        // Paper: "C-Cube can chain computation/communication with up to
        // 98% efficiency".
        let p = TrainingPipeline::dgx1(&resnet50(), 128);
        let cc = p.iteration(Mode::CCube);
        assert!(
            cc.normalized_perf > 0.93,
            "efficiency {}",
            cc.normalized_perf
        );
    }

    #[test]
    fn low_bandwidth_hurts_everyone_but_ccube_least() {
        let compute = ComputeModel::v100();
        let net = vgg16();
        let hi = TrainingPipeline::dgx1_with(&net, 64, &compute, 1.0);
        let lo = TrainingPipeline::dgx1_with(&net, 64, &compute, 0.25);
        for mode in Mode::ALL {
            assert!(
                lo.iteration(mode).normalized_perf < hi.iteration(mode).normalized_perf,
                "{mode}"
            );
        }
        let drop_b = hi.iteration(Mode::Baseline).normalized_perf
            - lo.iteration(Mode::Baseline).normalized_perf;
        let drop_cc =
            hi.iteration(Mode::CCube).normalized_perf - lo.iteration(Mode::CCube).normalized_perf;
        assert!(drop_cc < drop_b);
    }

    #[test]
    fn zfnet_small_batch_favors_ring_over_c1() {
        // ZFNet: heavy gradients, tiny compute at small batch — the ring
        // baseline overtakes the unchained overlapped tree.
        let p = TrainingPipeline::dgx1(&zfnet(), 16);
        let c1 = p.iteration(Mode::OverlappedTree);
        let r = p.iteration(Mode::Ring);
        assert!(r.t_iter < c1.t_iter);
    }

    #[test]
    fn efficiency_increases_with_batch() {
        let net = resnet50();
        let perfs: Vec<f64> = [16, 32, 64, 128]
            .iter()
            .map(|&b| {
                TrainingPipeline::dgx1(&net, b)
                    .iteration(Mode::CCube)
                    .normalized_perf
            })
            .collect();
        for w in perfs.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{perfs:?}");
        }
    }

    #[test]
    fn pattern_cases_rank_as_in_fig16() {
        let p1 = TrainingPipeline::from_pattern(&patterns::case1(), 8);
        let p2 = TrainingPipeline::from_pattern(&patterns::case2(), 8);
        let p3 = TrainingPipeline::from_pattern(&patterns::case3(), 8);
        let e1 = p1.iteration(Mode::CCube);
        let e2 = p2.iteration(Mode::CCube);
        let e3 = p3.iteration(Mode::CCube);
        // Case 1 (CNN-like) chains best.
        assert!(e1.t_iter <= e2.t_iter);
        assert!(e1.t_iter <= e3.t_iter);
        // Case 2 shows bubbles.
        assert!(e2.total_bubble >= e1.total_bubble);
    }

    #[test]
    fn layer_chunk_table_is_consistent() {
        let p = TrainingPipeline::dgx1(&resnet50(), 64);
        let table = p.layer_chunk_table();
        assert_eq!(table.len(), 54);
        assert!(table.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*table.last().unwrap(), p.num_chunks());
    }

    #[test]
    fn turnaround_gap_between_modes() {
        let p = TrainingPipeline::dgx1(&resnet50(), 64);
        let b = p.iteration(Mode::Baseline);
        let cc = p.iteration(Mode::CCube);
        assert!(b.turnaround / cc.turnaround > 5.0);
    }
}
