//! The `ccube lint` case library: named (schedule, embedding, topology)
//! configurations run through the static analyzer.
//!
//! The first group covers every configuration the shipped experiments
//! simulate (they must lint with zero errors); the second group contains
//! deliberately broken demonstrations — the doubled-NVLink conflict of a
//! naive double-tree placement, a forced shared-channel detour, and a
//! seeded dependency deadlock — that show the analyzer's witnesses.

use ccube_collectives::analyze::{self, AnalyzeOptions, LintReport};
use ccube_collectives::{
    analyze_physical, ring_allreduce, tree_allreduce, BinaryTree, ChunkId, Chunking,
    DoubleBinaryTree, EdgeKey, Embedding, Overlap, Phase, PhysicalAnalyzeOptions, Rank, Schedule,
    Transfer, TransferId, TreeIndex,
};
use ccube_runtime::protocol::{DEFAULT_RING_MAILBOX_CAPACITY, DEFAULT_TREE_MAILBOX_CAPACITY};
use ccube_sim::{analyze_severance, forever, FaultEvent, FaultPlan, SimOptions};
use ccube_topology::{
    dgx1, hierarchical, ByteSize, ChannelId, FabricConfig, FabricGraph, Route, Seconds, Topology,
};

/// The named lint cases, in report order.
pub const CASES: [(&str, &str); 8] = [
    (
        "dgx1-cc",
        "overlapped double tree on the DGX-1's conflict-free placement (the CC schedule)",
    ),
    (
        "dgx1-baseline",
        "baseline double tree on the DGX-1's conflict-free placement",
    ),
    (
        "dgx1-single",
        "overlapped single tree on the DGX-1, identity placement",
    ),
    (
        "dgx1-ring",
        "ring AllReduce on the DGX-1, identity placement",
    ),
    (
        "hier16",
        "overlapped double tree across the 16-GPU switch fabric (NIC routes)",
    ),
    (
        "dgx1-naive-double",
        "DEMO: double tree placed naively (identity) — collides on the doubled NVLinks",
    ),
    (
        "conflict",
        "DEMO: single tree with a forced detour sharing another edge's channel",
    ),
    (
        "deadlock",
        "DEMO: seeded dependency cycle (two transfers waiting on each other)",
    ),
];

/// The outcome of linting one named case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case name (`dgx1-cc`, ...).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The linted schedule's algorithm name.
    pub algorithm: String,
    /// The topology the embedding targets.
    pub topology: &'static str,
    /// The analyzer's findings.
    pub report: LintReport,
}

impl CaseReport {
    /// Renders this case as the `--json` object: stable key order, the
    /// report nested under `"report"`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"case\":\"{}\",\"algorithm\":\"{}\",\"topology\":\"{}\",\"report\":{}}}",
            self.name,
            self.algorithm,
            self.topology,
            self.report.to_json()
        )
    }
}

fn tree_opts() -> AnalyzeOptions {
    AnalyzeOptions {
        mailbox_capacity: Some(DEFAULT_TREE_MAILBOX_CAPACITY),
        ..AnalyzeOptions::default()
    }
}

fn ring_opts() -> AnalyzeOptions {
    AnalyzeOptions {
        mailbox_capacity: Some(DEFAULT_RING_MAILBOX_CAPACITY),
        ..AnalyzeOptions::default()
    }
}

fn lint_embedded(
    name: &'static str,
    description: &'static str,
    topology: &'static str,
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    opts: &AnalyzeOptions,
) -> CaseReport {
    CaseReport {
        name,
        description,
        algorithm: schedule.algorithm().to_string(),
        topology,
        report: analyze::analyze_embedded(schedule, embedding, topo, opts),
    }
}

fn double_tree(ranks: usize, k: usize, overlap: Overlap) -> Schedule {
    let dt = DoubleBinaryTree::new(ranks).expect("valid rank count");
    tree_allreduce(dt.trees(), &Chunking::even(ByteSize::mib(64), k), overlap)
}

fn single_tree(ranks: usize, k: usize) -> Schedule {
    let tree = BinaryTree::inorder(ranks).expect("valid rank count");
    tree_allreduce(
        std::slice::from_ref(&tree),
        &Chunking::even(ByteSize::mib(64), k),
        Overlap::ReductionBroadcast,
    )
}

/// Builds the forced shared-channel embedding of the `conflict` demo: the
/// first pair of same-source logical edges where the second can be
/// detoured through the first's destination is rerouted over the first
/// edge's channel, so both edges occupy it.
fn forced_conflict_embedding(topo: &Topology, schedule: &Schedule) -> Embedding {
    let mut emb = Embedding::identity(topo, schedule).expect("embeddable");
    let edges = schedule.logical_edges();
    for (i, &(src1, dst1, tree1)) in edges.iter().enumerate() {
        for &(src2, dst2, tree2) in &edges[i + 1..] {
            if src2 != src1 || (dst2, tree2) == (dst1, tree1) {
                continue;
            }
            let e1 = EdgeKey {
                src: src1,
                dst: dst1,
                tree: tree1,
            };
            let e2 = EdgeKey {
                src: src2,
                dst: dst2,
                tree: tree2,
            };
            let (g1, g2, g3) = (emb.gpu_of(src1), emb.gpu_of(dst1), emb.gpu_of(dst2));
            // e2 will ride e1's first channel to dst1, then hop onward.
            let Some(route1) = emb.route(&e1) else {
                continue;
            };
            let first = route1.channels()[0];
            if topo.channel(first).dst() != g2 {
                continue; // e1 itself is a detour; keep looking
            }
            let Some(&onward) = topo.channels_between(g2, g3).first() else {
                continue;
            };
            emb.set_route(e2, Route::detour(g1, g3, g2, vec![first, onward]));
            return emb;
        }
    }
    unreachable!("a detourable same-source edge pair exists on the DGX-1")
}

/// Builds the `deadlock` demo schedule: two transfers that wait on each
/// other (a forward dependency closing a 2-cycle).
fn seeded_deadlock_schedule() -> Schedule {
    let mk = |id: u32, src: u32, dst: u32, deps: Vec<TransferId>| Transfer {
        id: TransferId(id),
        src: Rank(src),
        dst: Rank(dst),
        chunk: ChunkId(0),
        bytes: ByteSize::kib(4),
        phase: Phase::Reduce,
        tree: TreeIndex(0),
        deps,
    };
    Schedule::new_unchecked(
        "seeded-deadlock",
        2,
        Chunking::even(ByteSize::kib(8), 1),
        vec![
            mk(0, 0, 1, vec![TransferId(1)]),
            mk(1, 1, 0, vec![TransferId(0)]),
        ],
    )
}

/// Runs one named case, or `None` if the name is unknown.
pub fn run_case(name: &str) -> Option<CaseReport> {
    let description = CASES.iter().find(|(n, _)| *n == name)?.1;
    let report = match name {
        "dgx1-cc" => {
            let topo = dgx1();
            let s = double_tree(8, 32, Overlap::ReductionBroadcast);
            let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
            lint_embedded("dgx1-cc", description, "dgx1", &topo, &s, &e, &tree_opts())
        }
        "dgx1-baseline" => {
            let topo = dgx1();
            let s = double_tree(8, 32, Overlap::None);
            let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
            lint_embedded(
                "dgx1-baseline",
                description,
                "dgx1",
                &topo,
                &s,
                &e,
                &tree_opts(),
            )
        }
        "dgx1-single" => {
            let topo = dgx1();
            let s = single_tree(8, 32);
            let e = Embedding::identity(&topo, &s).expect("embeddable");
            lint_embedded(
                "dgx1-single",
                description,
                "dgx1",
                &topo,
                &s,
                &e,
                &tree_opts(),
            )
        }
        "dgx1-ring" => {
            let topo = dgx1();
            let s = ring_allreduce(8, ByteSize::mib(64));
            let e = Embedding::identity(&topo, &s).expect("embeddable");
            lint_embedded(
                "dgx1-ring",
                description,
                "dgx1",
                &topo,
                &s,
                &e,
                &ring_opts(),
            )
        }
        "hier16" => {
            let topo = hierarchical(16);
            let s = double_tree(16, 32, Overlap::ReductionBroadcast);
            let e = Embedding::nic(&topo, &s).expect("embeddable");
            lint_embedded("hier16", description, "hier16", &topo, &s, &e, &tree_opts())
        }
        "dgx1-naive-double" => {
            let topo = dgx1();
            let s = double_tree(8, 32, Overlap::ReductionBroadcast);
            let e = Embedding::identity(&topo, &s).expect("embeddable");
            lint_embedded(
                "dgx1-naive-double",
                description,
                "dgx1",
                &topo,
                &s,
                &e,
                &tree_opts(),
            )
        }
        "conflict" => {
            let topo = dgx1();
            let s = single_tree(8, 8);
            let e = forced_conflict_embedding(&topo, &s);
            lint_embedded("conflict", description, "dgx1", &topo, &s, &e, &tree_opts())
        }
        "deadlock" => {
            let s = seeded_deadlock_schedule();
            CaseReport {
                name: "deadlock",
                description,
                algorithm: s.algorithm().to_string(),
                topology: "-",
                report: analyze::analyze(&s, &tree_opts()),
            }
        }
        _ => return None,
    };
    Some(report)
}

/// Runs every named case in report order.
pub fn run_all() -> Vec<CaseReport> {
    CASES
        .iter()
        .map(|(name, _)| run_case(name).expect("listed case exists"))
        .collect()
}

/// The named physical (fabric-level) lint cases, in report order.
///
/// The first group covers shipped configurations (clean apart from the
/// analyzer's Info-severity lower-bound certificates); the second group
/// contains deliberately hazardous demonstrations, including the
/// one-slot uplink-striping skew that PR 8 could only find by running
/// the DES.
pub const PHYSICAL_CASES: [(&str, &str); 5] = [
    (
        "dgx1-cc-physical",
        "overlapped double tree on the DGX-1's single-switch fabric (bounds only)",
    ),
    (
        "hier16-physical",
        "overlapped double tree across four radix-4 leaves, two uplink slots",
    ),
    (
        "hier16-ring-uplinks",
        "DEMO: ring across four radix-4 leaves, two hash-striped uplink slots — every crossing lands on slot 1",
    ),
    (
        "hier16-oversub",
        "DEMO: ring across four radix-4 leaves at 8:1 uplink oversubscription",
    ),
    (
        "severed-ring",
        "DEMO: fault-plan severance of the hierarchical ring (permanent NIC outage vs. a finite one)",
    ),
];

/// The multi-uplink leaf/spine fabric the physical demos run on: four
/// radix-4 leaves, two uplink slots per leaf, two spines.
fn striped_fabric(topo: &Topology, oversubscription: f64) -> FabricGraph {
    FabricGraph::from_topology(
        topo,
        &FabricConfig {
            radix: Some(4),
            oversubscription,
            uplink_latency: Seconds::from_micros(1.0),
            spines: 2,
            uplinks_per_leaf: 2,
        },
    )
}

fn lint_physical(
    name: &'static str,
    description: &'static str,
    topology: &'static str,
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    fabric: &FabricGraph,
) -> CaseReport {
    CaseReport {
        name,
        description,
        algorithm: schedule.algorithm().to_string(),
        topology,
        report: analyze_physical(
            schedule,
            embedding,
            topo,
            fabric,
            &PhysicalAnalyzeOptions::default(),
        ),
    }
}

/// Runs one named physical case, or `None` if the name is unknown.
pub fn run_physical_case(name: &str) -> Option<CaseReport> {
    let description = PHYSICAL_CASES.iter().find(|(n, _)| *n == name)?.1;
    let report = match name {
        "dgx1-cc-physical" => {
            let topo = dgx1();
            let s = double_tree(8, 32, Overlap::ReductionBroadcast);
            let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
            let fabric = FabricGraph::from_topology(&topo, &FabricConfig::default());
            lint_physical(
                "dgx1-cc-physical",
                description,
                "dgx1",
                &topo,
                &s,
                &e,
                &fabric,
            )
        }
        "hier16-physical" => {
            let topo = hierarchical(16);
            let s = double_tree(16, 32, Overlap::ReductionBroadcast);
            let e = Embedding::nic(&topo, &s).expect("embeddable");
            let fabric = striped_fabric(&topo, 1.0);
            lint_physical(
                "hier16-physical",
                description,
                "hier16",
                &topo,
                &s,
                &e,
                &fabric,
            )
        }
        "hier16-ring-uplinks" => {
            let topo = hierarchical(16);
            let s = ring_allreduce(16, ByteSize::mib(64));
            let e = Embedding::nic(&topo, &s).expect("embeddable");
            let fabric = striped_fabric(&topo, 1.0);
            lint_physical(
                "hier16-ring-uplinks",
                description,
                "hier16",
                &topo,
                &s,
                &e,
                &fabric,
            )
        }
        "hier16-oversub" => {
            let topo = hierarchical(16);
            let s = ring_allreduce(16, ByteSize::mib(64));
            let e = Embedding::nic(&topo, &s).expect("embeddable");
            let fabric = striped_fabric(&topo, 8.0);
            lint_physical(
                "hier16-oversub",
                description,
                "hier16",
                &topo,
                &s,
                &e,
                &fabric,
            )
        }
        "severed-ring" => {
            let topo = hierarchical(8);
            let s = ring_allreduce(8, ByteSize::mib(64));
            let e = Embedding::nic(&topo, &s).expect("embeddable");
            // One NIC injection channel down forever (severed), the
            // same channel down for a finite window (stall).
            let plan = FaultPlan::new(vec![
                FaultEvent::LinkDown {
                    channel: ChannelId(0),
                    from: Seconds::ZERO,
                    until: forever(),
                },
                FaultEvent::LinkDown {
                    channel: ChannelId(1),
                    from: Seconds::from_micros(100.0),
                    until: Seconds::from_millis(5.0),
                },
            ])
            .expect("valid plan");
            CaseReport {
                name: "severed-ring",
                description,
                algorithm: s.algorithm().to_string(),
                topology: "hier8",
                report: analyze_severance(&plan, &topo, &s, &e, &SimOptions::default()),
            }
        }
        _ => return None,
    };
    Some(report)
}

/// Runs every named physical case in report order.
pub fn run_physical_all() -> Vec<CaseReport> {
    PHYSICAL_CASES
        .iter()
        .map(|(name, _)| run_physical_case(name).expect("listed case exists"))
        .collect()
}

/// Renders case reports as the `--json` payload: a stable JSON array.
pub fn to_json(reports: &[CaseReport]) -> String {
    let mut out = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push(']');
    out
}

/// Renders case reports as human-readable text.
pub fn to_text(reports: &[CaseReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&format!(
            "== {} ({} on {}) ==\n   {}\n{}\n\n",
            r.name, r.algorithm, r.topology, r.description, r.report
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::analyze::{LintCode, Severity};

    #[test]
    fn shipped_configurations_lint_clean() {
        for name in [
            "dgx1-cc",
            "dgx1-baseline",
            "dgx1-single",
            "dgx1-ring",
            "hier16",
        ] {
            let case = run_case(name).expect("known case");
            assert!(case.report.is_clean(), "{name}:\n{}", case.report);
            assert_eq!(
                case.report.count(Severity::Warn),
                0,
                "{name}:\n{}",
                case.report
            );
        }
    }

    #[test]
    fn demo_cases_reproduce_their_findings() {
        let naive = run_case("dgx1-naive-double").expect("known case");
        assert_eq!(
            naive
                .report
                .diagnostics()
                .iter()
                .filter(|d| d.code == LintCode::ChannelConflict)
                .count(),
            2,
            "the doubled-NVLink hazard is exactly two conflicts:\n{}",
            naive.report
        );

        let conflict = run_case("conflict").expect("known case");
        assert!(conflict
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::ChannelConflict));

        let deadlock = run_case("deadlock").expect("known case");
        assert!(deadlock
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::WaitCycle));
    }

    #[test]
    fn unknown_case_is_none() {
        assert!(run_case("nope").is_none());
        assert!(run_physical_case("nope").is_none());
    }

    #[test]
    fn physical_cases_reproduce_their_findings() {
        // Shipped configurations: no errors, and the analyzer certifies
        // both lower bounds (channel-level and port-level).
        for name in ["dgx1-cc-physical", "hier16-physical"] {
            let case = run_physical_case(name).expect("known case");
            assert!(case.report.is_clean(), "{name}:\n{}", case.report);
            for code in [LintCode::MakespanLowerBound, LintCode::FabricLowerBound] {
                assert!(
                    case.report.diagnostics().iter().any(|d| d.code == code),
                    "{name} missing {code:?}:\n{}",
                    case.report
                );
            }
        }

        // The PR 8 hazard, caught statically: every cross-leaf crossing
        // stripes to one slot — 4 leaves x 2 directions = 8 warnings.
        let skew = run_physical_case("hier16-ring-uplinks").expect("known case");
        assert_eq!(
            skew.report
                .diagnostics()
                .iter()
                .filter(|d| d.code == LintCode::UplinkStripingSkew)
                .count(),
            8,
            "{}",
            skew.report
        );
        assert!(skew.report.is_clean());

        let oversub = run_physical_case("hier16-oversub").expect("known case");
        assert!(oversub
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::OversubscriptionHotspot));

        // The severance demo: a permanent NIC outage is an error, the
        // finite window on the same class of channel is only a stall.
        let severed = run_physical_case("severed-ring").expect("known case");
        assert!(severed
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::FaultSevered));
        assert!(!severed.report.is_clean());
    }
}
