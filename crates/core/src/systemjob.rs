//! Building a full training iteration as a compute+comm co-simulation
//! job.
//!
//! This is the piece the paper could not get from ASTRA-sim: one
//! [`SystemJob`] holds the backward compute tasks, the one-shot
//! AllReduce gated on the *slowest* backward, and the next iteration's
//! forward layers gated per GPU on the transfers that deliver their
//! gradient chunks — i.e. gradient queuing expressed as dataflow. The
//! co-simulated makespan is cross-validated against the closed-form
//! [`TrainingPipeline`] model (they agree to within a few percent; see
//! tests).

use crate::pipeline::TrainingPipeline;
use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Overlap, TransferId};
use ccube_sim::{ComputeTask, ComputeTaskId, SystemJob};
use ccube_topology::GpuId;

/// Assembles one C-Cube training iteration (backward → one-shot
/// AllReduce → chained forward) as a [`SystemJob`] for
/// [`simulate_system`](ccube_sim::simulate_system).
///
/// Task layout: compute task `g` (for `g < P`) is GPU `g`'s backward
/// pass; task `P + g·L + l` is GPU `g`'s forward layer `l` of the next
/// iteration.
///
/// `compute_scale[g]` stretches GPU `g`'s compute (detour forwarders,
/// Fig. 15).
///
/// # Panics
///
/// Panics if `compute_scale` does not have one entry per rank.
pub fn build_iteration_job(
    pipeline: &TrainingPipeline,
    overlap: Overlap,
    compute_scale: &[f64],
) -> SystemJob {
    let p = compute_scale.len();
    assert!(p >= 2, "need at least two GPUs");
    let trees = DoubleBinaryTree::new(p).expect("p >= 2");
    let num_chunks = pipeline.num_chunks();
    let schedule = tree_allreduce(
        trees.trees(),
        &Chunking::even(pipeline.total_grads(), num_chunks),
        overlap,
    );
    let table = pipeline.layer_chunk_table();
    let layer_fwd = pipeline.layer_fwd_times();
    let num_layers = layer_fwd.len();

    // deliveries[rank][chunk]: transfers that write this chunk's final
    // value at this rank (for the root: the reduce-ins; elsewhere: the
    // broadcast arrival).
    let mut deliveries: Vec<Vec<Vec<TransferId>>> = vec![vec![Vec::new(); num_chunks]; p];
    for t in schedule.transfers() {
        deliveries[t.dst.index()][t.chunk.index()].push(t.id);
    }

    let mut compute = Vec::with_capacity(p * (1 + num_layers));
    // Backward tasks: ids 0..P.
    for (g, &scale) in compute_scale.iter().enumerate() {
        compute.push(ComputeTask {
            id: ComputeTaskId(g as u32),
            gpu: GpuId(g as u32),
            duration: pipeline.t_bwd() * scale,
            deps_compute: vec![],
            deps_transfers: vec![],
            label: format!("bwd g{g}"),
        });
    }
    // Forward layers: ids P + g*L + l.
    for g in 0..p {
        for (l, &fwd) in layer_fwd.iter().enumerate() {
            let id = ComputeTaskId((p + g * num_layers + l) as u32);
            let mut deps_compute = vec![ComputeTaskId(g as u32)];
            if l > 0 {
                deps_compute.push(ComputeTaskId((p + g * num_layers + l - 1) as u32));
            }
            // Gradient queuing's dequeue gate: every chunk this layer
            // needs must have been delivered to this rank.
            let mut deps_transfers = Vec::new();
            for chunk_deliveries in &deliveries[g][..table[l].min(num_chunks)] {
                deps_transfers.extend(chunk_deliveries.iter().copied());
            }
            compute.push(ComputeTask {
                id,
                gpu: GpuId(g as u32),
                duration: fwd * compute_scale[g],
                deps_compute,
                deps_transfers,
                label: format!("fwd g{g} L{l}"),
            });
        }
    }

    // One-shot collective: every dependency-free transfer waits for all
    // backward passes (the gradients exist only after backward; the
    // synchronous collective effectively starts with the slowest GPU).
    let bwd_ids: Vec<ComputeTaskId> = (0..p as u32).map(ComputeTaskId).collect();
    let transfer_gates = schedule
        .transfers()
        .iter()
        .filter(|t| t.deps.is_empty())
        .flat_map(|t| bwd_ids.iter().map(move |&b| (t.id, b)))
        .collect();

    SystemJob {
        schedule,
        compute,
        transfer_gates,
    }
}

/// The forward-layer compute-task id of GPU `g`, layer `l` in a job built
/// by [`build_iteration_job`] for `p` ranks and `num_layers` layers.
pub fn fwd_task_id(p: usize, num_layers: usize, g: usize, l: usize) -> ComputeTaskId {
    ComputeTaskId((p + g * num_layers + l) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Mode;
    use ccube_collectives::Embedding;
    use ccube_sim::{simulate_system, SimOptions};
    use ccube_topology::{dgx1, Seconds};

    fn run_job(overlap: Overlap, scale: &[f64]) -> (ccube_sim::SystemReport, TrainingPipeline) {
        let pipeline = TrainingPipeline::dgx1(&ccube_dnn::resnet50(), 64);
        let job = build_iteration_job(&pipeline, overlap, scale);
        let topo = dgx1();
        let emb = Embedding::dgx1_double_tree(&topo, &job.schedule).unwrap();
        let report = simulate_system(&topo, &job, &emb, &SimOptions::default()).unwrap();
        (report, pipeline)
    }

    #[test]
    fn cosim_matches_closed_form_ccube_iteration() {
        let (report, pipeline) = run_job(Overlap::ReductionBroadcast, &[1.0; 8]);
        // The job spans exactly one steady-state iteration: backward from
        // t=0, one-shot AllReduce, chained forward — the same
        // `t_bwd + chained-forward-finish` the closed-form CC iteration
        // prices.
        let closed = pipeline.iteration(Mode::CCube).t_iter;
        let rel =
            (report.makespan.as_secs_f64() - closed.as_secs_f64()).abs() / closed.as_secs_f64();
        assert!(
            rel < 0.03,
            "co-sim {} vs closed form {} ({:.2}% off)",
            report.makespan,
            closed,
            rel * 100.0
        );
    }

    #[test]
    fn overlap_beats_baseline_in_the_cosim_too() {
        let (over, _) = run_job(Overlap::ReductionBroadcast, &[1.0; 8]);
        let (base, _) = run_job(Overlap::None, &[1.0; 8]);
        assert!(over.makespan < base.makespan);
    }

    #[test]
    fn early_layers_overlap_with_late_chunks() {
        // The co-sim shows gradient queuing in action: on some GPU the
        // first forward layer *starts* before the last transfer completes
        // (ResNet-50's conv1 alone outlasts the communication tail, so
        // compare start times, not completions).
        let (report, pipeline) = run_job(Overlap::ReductionBroadcast, &[1.0; 8]);
        let num_layers = pipeline.layer_fwd_times().len();
        let l0_complete = report.compute_complete[fwd_task_id(8, num_layers, 0, 0).index()];
        let l0_start = l0_complete - pipeline.layer_fwd_times()[0];
        let last_transfer = report
            .transfer_complete
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max);
        assert!(
            l0_start < last_transfer,
            "layer 0 starts at {l0_start} vs last transfer {last_transfer}"
        );
    }

    #[test]
    fn slow_forwarders_stretch_the_iteration() {
        let (base, _) = run_job(Overlap::ReductionBroadcast, &[1.0; 8]);
        let mut scale = [1.0; 8];
        scale[1] = 1.04;
        scale[7] = 1.04;
        let (slowed, _) = run_job(Overlap::ReductionBroadcast, &scale);
        assert!(slowed.makespan > base.makespan);
        let inflation = slowed.makespan.as_secs_f64() / base.makespan.as_secs_f64();
        assert!(inflation < 1.05, "inflation {inflation}");
    }

    #[test]
    fn fwd_layers_execute_in_order_per_gpu() {
        let (report, pipeline) = run_job(Overlap::ReductionBroadcast, &[1.0; 8]);
        let num_layers = pipeline.layer_fwd_times().len();
        for g in 0..8 {
            for l in 1..num_layers {
                let prev = report.compute_complete[fwd_task_id(8, num_layers, g, l - 1).index()];
                let this = report.compute_complete[fwd_task_id(8, num_layers, g, l).index()];
                assert!(this >= prev, "g{g} L{l}");
            }
        }
    }
}
