#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from anywhere; mirrors what CI would enforce.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> determinism lint (scripts/lint_determinism.sh)"
./scripts/lint_determinism.sh

echo "==> cargo doc -D warnings (missing_docs included: every crate is #![warn(missing_docs)])"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> fault-injection property tests"
cargo test -q -p ccube-sim --test faults

echo "==> network-model equivalence suite (fabric passthrough == approx)"
cargo test -q -p ccube-sim --test fabric_equivalence

echo "==> preparation-cache equivalence suite (cache on == off, arena reuse)"
cargo test -q -p ccube-sim --test prep_equivalence

echo "==> ccube figures --no-prep-cache reproduces the cached CSVs"
rm -rf target/check-prep-cached target/check-prep-cold
cargo run -q --release -p ccube --bin ccube -- figures --threads 2 target/check-prep-cached > /dev/null
cargo run -q --release -p ccube --bin ccube -- figures --threads 2 --no-prep-cache target/check-prep-cold > /dev/null
diff -r target/check-prep-cached target/check-prep-cold
rm -rf target/check-prep-cached target/check-prep-cold

echo "==> static schedule analyzer (ccube lint)"
cargo run -q --release -p ccube --bin ccube -- lint all > /dev/null

echo "==> physical-layer analyzer (ccube lint --physical) and its goldens"
cargo run -q --release -p ccube --bin ccube -- lint --physical all --json > /dev/null
cargo test -q -p ccube --test lint_golden
cargo test -q -p ccube --test property_physical

echo "==> policy search with certified-bound pruning (ccube search --bounds)"
cargo run -q --release -p ccube --bin ccube -- search --bounds > /dev/null

echo "==> resilience smoke run (ccube faults --smoke)"
cargo run -q --release -p ccube --bin ccube -- faults --smoke

echo "==> resilience smoke run on the switch fabric (--fabric switch)"
cargo run -q --release -p ccube --bin ccube -- faults --smoke --fabric switch

echo "==> resilience smoke run on the 2-uplink spine/leaf fabric"
cargo run -q --release -p ccube --bin ccube -- faults --smoke --fabric switch --uplinks 2

echo "==> fabric fault-injection suite (failover, uplink/switch outages)"
cargo test -q -p ccube-sim --test fabric_faults

echo "==> fabric-resilience golden stays byte-identical"
cargo test -q -p ccube --test golden_regression ext_fabric_resilience_csv_matches_golden_byte_for_byte

echo "==> HTML trace viewer: payload goldens + doc-consistency audit"
cargo test -q -p ccube --test trace_html_golden
cargo test -q -p ccube --test doc_consistency

echo "==> HTML trace viewer renders self-contained single-run and diff files"
rm -rf target/check-html && mkdir -p target/check-html
cargo run -q --release -p ccube --bin ccube -- trace --html target/check-html/run.html > /dev/null
# trace --diff exits 1 when the traces differ (they do: different seeds);
# only exit codes above 1 are real failures.
status=0
cargo run -q --release -p ccube --bin ccube -- \
    trace --diff 7 8 --html target/check-html/diff.html > /dev/null || status=$?
[ "$status" -le 1 ]
for f in target/check-html/run.html target/check-html/diff.html; do
    grep -q 'id="ccube-trace-data"' "$f"
    grep -q '</html>' "$f"
    # Self-contained: no external scripts, styles, or fetches.
    ! grep -Eq 'src="http|href="http' "$f"
done
rm -rf target/check-html

echo "==> cargo bench --no-run (benches stay buildable)"
cargo bench --workspace --no-run

echo "All checks passed."
