#!/usr/bin/env bash
# Determinism lint for the replay-critical crates.
#
# The simulator and the collectives analyzer must be bit-reproducible:
# goldens (fig12/14/15, sweep, resilience, lint JSON) are compared byte
# for byte, and the static analyzer's diagnostics feed pruning decisions.
# This script rejects the usual sources of run-to-run drift:
#
#   1. wall-clock time, ambient RNG, and data-parallel iterators are
#      banned outright in crates/simulator and crates/collectives;
#   2. HashMap/HashSet (randomized iteration order per process) may only
#      appear in files audited and listed in determinism_allowlist.txt.
#
# The allowlist is also checked for staleness so it cannot rot into a
# blanket waiver.
set -euo pipefail
cd "$(dirname "$0")/.."

scan_dirs=(crates/simulator/src crates/collectives/src crates/topology/src)
allowlist=scripts/determinism_allowlist.txt
fail=0

banned='Instant::now|SystemTime::now|thread_rng|rand::random|into_par_iter|par_iter\(\)|par_bridge'
if hits=$(grep -rnE "$banned" "${scan_dirs[@]}"); then
    echo "determinism lint: banned nondeterminism primitive(s):" >&2
    echo "$hits" >&2
    fail=1
fi

# HashMap/HashSet hits must come from allowlisted (audited) files.
hash_files=$(grep -rlE 'HashMap|HashSet' "${scan_dirs[@]}" | sort -u || true)
for f in $hash_files; do
    if ! grep -qxF "$f" "$allowlist"; then
        echo "determinism lint: $f uses HashMap/HashSet but is not in $allowlist" >&2
        echo "  audit the uses (keyed lookup only, no ordered iteration) and add the file" >&2
        fail=1
    fi
done

# Stale allowlist entries point at audits that no longer cover anything.
while IFS= read -r entry; do
    case "$entry" in ''|'#'*) continue ;; esac
    if [ ! -f "$entry" ]; then
        echo "determinism lint: allowlist entry '$entry' does not exist" >&2
        fail=1
    elif ! grep -qE 'HashMap|HashSet' "$entry"; then
        echo "determinism lint: allowlist entry '$entry' no longer uses HashMap/HashSet; remove it" >&2
        fail=1
    fi
done < "$allowlist"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "determinism lint: clean (${#scan_dirs[@]} crates scanned)"
