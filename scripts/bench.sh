#!/usr/bin/env bash
# Performance record: criterion microbenchmarks plus the sweep/DES
# scaling bench, which writes machine-readable BENCH_sweep.json at the
# repository root. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench: micro (criterion)"
cargo bench -p ccube-bench --bench micro

echo "==> cargo bench: sweep (writes BENCH_sweep.json)"
cargo bench -p ccube-bench --bench sweep

echo "==> BENCH_sweep.json"
cat BENCH_sweep.json
