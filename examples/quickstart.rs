//! Quickstart: compare the five execution modes of the paper on
//! ResNet-50 over a DGX-1-like 8-GPU machine.
//!
//! ```text
//! cargo run --example quickstart [batch]
//! ```

use ccube::pipeline::{Mode, TrainingPipeline};
use ccube_dnn::{resnet50, vgg16, zfnet};

fn main() {
    let batch: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    println!("C-Cube quickstart: 8-GPU DGX-1 model, batch {batch} per GPU\n");
    for net in [zfnet(), vgg16(), resnet50()] {
        println!("{net}");
        let pipeline = TrainingPipeline::dgx1(&net, batch);
        println!(
            "  {:<3} {:>12} {:>12} {:>12} {:>10} {:>8}",
            "", "comm", "turnaround", "iteration", "bubbles", "norm."
        );
        let baseline = pipeline.iteration(Mode::Baseline);
        for r in pipeline.all_modes() {
            println!(
                "  {:<3} {:>12} {:>12} {:>12} {:>10} {:>8.3}",
                r.mode.label(),
                format!("{}", r.t_comm),
                format!("{}", r.turnaround),
                format!("{}", r.t_iter),
                format!("{}", r.total_bubble),
                r.normalized_perf,
            );
        }
        let cc = pipeline.iteration(Mode::CCube);
        println!(
            "  => C-Cube improves over the baseline tree by {:.1}%\n",
            (baseline.t_iter / cc.t_iter - 1.0) * 100.0
        );
    }
}
