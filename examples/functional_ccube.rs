//! Functional C-Cube end-to-end: run a *real* threaded AllReduce with
//! the overlapped double tree, gradient queuing, and chained forward
//! "computation" — then verify the numerics and show how early each
//! layer's forward pass started.
//!
//! ```text
//! cargo run --release --example functional_ccube
//! ```

use ccube::pipeline::TrainingPipeline;
use ccube_collectives::{DoubleBinaryTree, Overlap};
use ccube_dnn::resnet50;
use ccube_runtime::{ChainedRun, TreeAllReduceRuntime};

fn main() {
    let net = resnet50();
    let pipeline = TrainingPipeline::dgx1(&net, 64);
    let num_chunks = pipeline.num_chunks();
    let table = pipeline.layer_chunk_table();

    println!(
        "{}: {} gradient bytes in {} chunks over {} layers",
        net.name(),
        net.total_param_bytes(),
        num_chunks,
        table.len()
    );

    // Scale the real buffer down (same chunk structure, fewer floats) so
    // the example runs instantly while exercising the full protocol.
    let elements = 64 * num_chunks;
    let p = 8;
    let inputs: Vec<Vec<f32>> = (0..p)
        .map(|r| (0..elements).map(|i| ((r * 7 + i) % 11) as f32).collect())
        .collect();
    let mut expect = vec![0f32; elements];
    for buf in &inputs {
        for (e, x) in expect.iter_mut().zip(buf) {
            *e += x;
        }
    }

    let dt = DoubleBinaryTree::new(p).expect("8 ranks");
    let rt =
        TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, num_chunks);
    let chained = ChainedRun::new(rt, table.clone()).expect("valid table");

    let (outputs, events) = chained
        .run(inputs, |_rank, _layer| {
            // here the layer's parameter update + forward pass would run
        })
        .expect("well-formed inputs");

    // 1. Numerical correctness on every rank.
    for (r, out) in outputs.iter().enumerate() {
        assert_eq!(out, &expect, "rank {r} disagrees with the serial sum");
    }
    println!("numerics: all {p} ranks bit-match the serial reference sum");

    // 2. Chaining: how many layers had their gate open before the last
    //    chunk arrived (i.e. genuinely overlapped with communication)?
    let rank0 = &events[0];
    let early = rank0
        .iter()
        .filter(|e| e.chunks_available < num_chunks as i64)
        .count();
    println!(
        "chaining: {}/{} layers on rank 0 started before the collective finished",
        early,
        rank0.len()
    );
    for e in rank0.iter().take(8) {
        println!(
            "  layer {:<2} gate opened with {:>3}/{} chunks enqueued",
            e.layer, e.chunks_available, num_chunks
        );
    }
    println!("  ...");
}
