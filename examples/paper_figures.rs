//! Regenerates every figure of the paper's evaluation and writes one CSV
//! per figure to `target/figures/` (or a directory given as the first
//! argument).
//!
//! ```text
//! cargo run --release --example paper_figures [out_dir] [--threads N]
//! ```
//!
//! `--threads` defaults to the machine's available parallelism; the
//! CSVs are bit-identical at any worker count (see `ccube_sim::sweep`).

use ccube::experiments;
use std::path::PathBuf;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, threads) = match ccube_sim::threads_from_args(&raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));

    println!("== Fig. 1: AllReduce share of execution time ==");
    for row in experiments::fig01::run() {
        println!("  {row}");
    }

    println!("\n== Fig. 3: invocation granularity (ResNet-50) ==");
    for row in experiments::fig03::run() {
        println!("  {row}");
    }

    println!("\n== Fig. 4: ring vs tree cost model (excerpt) ==");
    for row in experiments::fig04::run().iter().step_by(6) {
        println!("  {row}");
    }

    println!("\n== Fig. 12: overlap benefit on the DGX-1 ==");
    for row in experiments::fig12::run() {
        println!("  {row}");
    }

    println!("\n== Fig. 13: normalized overall performance (batch 64) ==");
    for row in experiments::fig13::run().iter().filter(|r| r.batch == 64) {
        println!("  {row}");
    }

    println!("\n== Fig. 14: scale-out (C1 vs R, turnaround) ==");
    for row in experiments::fig14::run() {
        println!("  {row}");
    }

    println!("\n== Fig. 15: detour-node overhead ==");
    for row in experiments::fig15::run() {
        println!("  {row}");
    }

    println!("\n== Fig. 16: communication/computation patterns ==");
    for row in experiments::fig16::run() {
        println!("  {row}");
    }

    println!("\n== Fig. 17: ResNet-50 layer profile (excerpt) ==");
    for row in experiments::fig17::run(64).iter().step_by(6) {
        println!("  {row}");
    }

    println!("\n== Extensions: alternative topology (NVSwitch) ==");
    for row in experiments::extensions::topology_study() {
        println!("  {row}");
    }

    println!("\n== Extensions: detour routes vs PCIe host bridge ==");
    for row in experiments::extensions::detour_vs_host() {
        println!("  {row}");
    }

    println!("\n== Extensions: chunk-count sensitivity (Eq. 4 check) ==");
    for row in experiments::extensions::chunk_sensitivity() {
        println!("  {row}");
    }

    println!("\n== Extensions: schedule policy search ==");
    for row in experiments::policy_search::run_with_threads(threads) {
        println!("  {row}");
    }

    match experiments::run_all_with(&dir, threads) {
        Ok(paths) => {
            println!("\nwrote {} CSV files to {}:", paths.len(), dir.display());
            for p in paths {
                println!("  {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("failed to write CSVs: {e}");
            std::process::exit(1);
        }
    }
}
