//! Regenerates the full-precision golden rows for the fig12/14/15
//! regression fixtures under `tests/data/`. Run after an *intentional*
//! change to the simulation model, never to paper over a regression:
//!
//! ```text
//! cargo run --release --example golden_dump
//! ```

use ccube::experiments::{fig12, fig14, fig15, resilience, scaleout_fabric};
use ccube_topology::ByteSize;
use std::fmt::Write as _;

fn main() {
    let mut f12 = String::from("bytes,k,t_baseline_s,t_overlapped_s,improvement_sim\n");
    for r in fig12::run() {
        writeln!(
            f12,
            "{},{},{:.17e},{:.17e},{:.17e}",
            r.n.as_u64(),
            r.k,
            r.t_baseline.as_secs_f64(),
            r.t_overlapped.as_secs_f64(),
            r.improvement_sim
        )
        .unwrap();
    }
    std::fs::write("tests/data/fig12_golden.csv", f12).unwrap();

    let mut f14 = String::from("p,bytes,k,t_ring_s,t_c1_s,t_b_s,turnaround_speedup\n");
    for r in fig14::run_with(
        &[4, 8, 16, 32, 64],
        &[ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(64)],
    ) {
        writeln!(
            f14,
            "{},{},{},{:.17e},{:.17e},{:.17e},{:.17e}",
            r.p,
            r.n.as_u64(),
            r.k,
            r.t_ring.as_secs_f64(),
            r.t_c1.as_secs_f64(),
            r.t_b.as_secs_f64(),
            r.turnaround_speedup
        )
        .unwrap();
    }
    std::fs::write("tests/data/fig14_golden.csv", f14).unwrap();

    let mut f15 = String::from("gpu,forward_kernels,forwarding_busy_s,normalized_perf\n");
    for r in fig15::run() {
        writeln!(
            f15,
            "{},{},{:.17e},{:.17e}",
            r.gpu,
            r.forward_kernels,
            r.forwarding_busy.as_secs_f64(),
            r.normalized_perf
        )
        .unwrap();
    }
    std::fs::write("tests/data/fig15_golden.csv", f15).unwrap();

    // The resilience fixture is the rendered CSV itself: the rows carry
    // string columns (topology/mode/status), and the sweep contract makes
    // the bytes reproducible from the default seed at any worker count.
    std::fs::write(
        "tests/data/ext_resilience_golden.csv",
        resilience::to_csv(&resilience::run()),
    )
    .unwrap();

    // The fabric-failover fixture: the same seeded uplink-outage plan
    // replayed across uplink counts and steering policies — its rows
    // witness the failover-recovery property the tests assert.
    std::fs::write(
        "tests/data/ext_fabric_resilience_golden.csv",
        resilience::fabric_to_csv(&resilience::run_fabric()),
    )
    .unwrap();

    // The switch-fabric fixtures are rendered CSVs too: byte-for-byte
    // reproducible (pure drivers, sweep contract), and the passthrough
    // rows double as an end-to-end record of the fabric ≡ approximation
    // equivalence contract.
    std::fs::write(
        "tests/data/ext_scaleout_fabric_golden.csv",
        scaleout_fabric::fabric_to_csv(&scaleout_fabric::fabric_study()),
    )
    .unwrap();
    std::fs::write(
        "tests/data/ext_nvswitch_sweep_golden.csv",
        scaleout_fabric::sweep_to_csv(&scaleout_fabric::nvswitch_sweep()),
    )
    .unwrap();
    std::fs::write(
        "tests/data/ext_torus_sweep_golden.csv",
        scaleout_fabric::sweep_to_csv(&scaleout_fabric::torus_sweep()),
    )
    .unwrap();
    println!("golden fixtures written to tests/data/");
}
