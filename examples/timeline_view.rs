//! Visualize the difference between the baseline and the overlapped tree
//! on the DGX-1 as ASCII timelines (the textual version of the paper's
//! Fig. 7 timing diagrams). `R` marks reduction sends, `B` broadcast
//! sends.
//!
//! ```text
//! cargo run --release --example timeline_view [mib]
//! ```

use ccube_collectives::cost::{k_opt, CostParams};
use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
use ccube_sim::{render_timeline, simulate, SimOptions, TimelineOptions};
use ccube_topology::{dgx1, ByteSize};

fn main() {
    let mib: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let n = ByteSize::mib(mib);

    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let params = CostParams::nvlink();
    let k = k_opt(&params, 8, n).div_ceil(2).max(1) * 2;
    let chunking = Chunking::even(n, k);

    for (title, overlap) in [
        ("baseline double tree (B)", Overlap::None),
        ("overlapped double tree (C1)", Overlap::ReductionBroadcast),
    ] {
        let s = tree_allreduce(dt.trees(), &chunking, overlap);
        let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
        let report = simulate(&topo, &s, &e, &SimOptions::default()).expect("simulates");
        println!("== {title}: {n} in {k} chunks ==");
        println!(
            "{}",
            render_timeline(&s, &report, &TimelineOptions::default())
        );
        println!(
            "makespan {}   turnaround {}\n",
            report.makespan(),
            report.turnaround()
        );
    }
}
