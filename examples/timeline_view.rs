//! Visualize the difference between the baseline and the overlapped tree
//! on the DGX-1 as ASCII timelines (the textual version of the paper's
//! Fig. 7 timing diagrams). `R` marks reduction sends, `B` broadcast
//! sends. Below each rank chart, the per-channel occupancy view and the
//! run's queue-wait counters show where the physical contention went.
//!
//! ```text
//! cargo run --release --example timeline_view [mib]
//! ```

use ccube_collectives::cost::{k_opt, CostParams};
use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
use ccube_sim::{render_channel_timeline, render_timeline, simulate, SimOptions, TimelineOptions};
use ccube_topology::{dgx1, ByteSize, ChannelId};

fn main() {
    let mib: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let n = ByteSize::mib(mib);

    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let params = CostParams::nvlink();
    let k = k_opt(&params, 8, n).div_ceil(2).max(1) * 2;
    let chunking = Chunking::even(n, k);

    for (title, overlap) in [
        ("baseline double tree (B)", Overlap::None),
        ("overlapped double tree (C1)", Overlap::ReductionBroadcast),
    ] {
        let s = tree_allreduce(dt.trees(), &chunking, overlap);
        let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
        let report = simulate(&topo, &s, &e, &SimOptions::default()).expect("simulates");
        println!("== {title}: {n} in {k} chunks ==");
        println!(
            "{}",
            render_timeline(&s, &report, &TimelineOptions::default())
        );
        println!(
            "makespan {}   turnaround {}",
            report.makespan(),
            report.turnaround()
        );

        // The physical side of the same run: per-channel occupancy over
        // time, then the kernel/pool counters.
        println!(
            "{}",
            render_channel_timeline(&report, &TimelineOptions::default())
        );
        let stats = report.stats();
        println!(
            "events {} scheduled / {} processed, event-queue depth ≤ {}, \
             channel-queue depth ≤ {}",
            stats.events_scheduled,
            stats.events_processed,
            stats.max_event_queue_depth,
            stats.max_channel_queue_depth,
        );
        println!("total queue wait {}", stats.total_queue_wait());
        let mut waits: Vec<(usize, ccube_topology::Seconds)> = stats
            .queue_wait
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, w)| !w.is_zero())
            .collect();
        waits.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (c, w) in waits.iter().take(5) {
            let ch = topo.channel(ChannelId(*c as u32));
            println!(
                "  ch{c} ({}->{}): waited {w}, utilization {:.1}%",
                ch.src().0,
                ch.dst().0,
                report.channel_utilization(ChannelId(*c as u32)) * 100.0
            );
        }
        // Utilization over time of the busiest channel, in 12 bins.
        if let Some((busiest, _)) = (0..topo.channels().len())
            .map(|c| (c, report.channel_utilization(ChannelId(c as u32))))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        {
            let bins = report.channel_utilization_timeline(ChannelId(busiest as u32), 12);
            let curve: Vec<String> = bins.iter().map(|u| format!("{:3.0}", u * 100.0)).collect();
            println!("  ch{busiest} utilization/time [%]: {}", curve.join(" "));
        }
        println!();
    }
}
