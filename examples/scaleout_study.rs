//! Scale-out study (the paper's Fig. 14): sweep node counts and message
//! sizes on the hierarchical switch topology and report how the
//! overlapped tree (C1) compares against the ring, and how much earlier
//! the first gradient turns around compared to the baseline tree.
//!
//! ```text
//! cargo run --release --example scaleout_study [max_nodes] [mib ...]
//! # e.g. cargo run --release --example scaleout_study 256 1 16 64
//! ```

use ccube::experiments::fig14;
use ccube_topology::ByteSize;

fn main() {
    let mut args = std::env::args().skip(1);
    let max_nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let sizes: Vec<ByteSize> = {
        let explicit: Vec<u64> = args.filter_map(|s| s.parse().ok()).collect();
        if explicit.is_empty() {
            vec![ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(64)]
        } else {
            explicit.into_iter().map(ByteSize::mib).collect()
        }
    };

    let mut ps = Vec::new();
    let mut p = 4;
    while p <= max_nodes {
        ps.push(p);
        p *= 2;
    }

    println!(
        "scale-out study: P up to {max_nodes}, sizes {:?}",
        sizes.iter().map(|s| format!("{s}")).collect::<Vec<_>>()
    );
    println!(
        "{:>6} {:>12} {:>6} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "P", "N", "K", "T_ring", "T_C1", "T_B", "C1/R", "turnaround"
    );
    for row in fig14::run_with(&ps, &sizes) {
        println!(
            "{:>6} {:>12} {:>6} {:>12} {:>12} {:>12} {:>10.2} {:>11.1}x",
            row.p,
            format!("{}", row.n),
            row.k,
            format!("{}", row.t_ring),
            format!("{}", row.t_c1),
            format!("{}", row.t_b),
            row.c1_over_ring,
            row.turnaround_speedup,
        );
    }
}
