//! A real synchronous training loop over the threaded C-Cube runtime:
//! several iterations of gradient computation, chained overlapped-tree
//! AllReduce with gradient queuing, and SGD updates — then verify that
//! all replicas stayed bit-identical and match a serial reference.
//!
//! ```text
//! cargo run --release --example train_loop [iterations]
//! ```

use ccube_runtime::{serial_reference, Trainer, TrainerConfig};

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    let config = TrainerConfig {
        num_ranks: 8,
        num_params: 8192,
        num_chunks: 32,
        layer_chunk_table: vec![2, 4, 8, 12, 18, 25, 32],
        learning_rate: 0.05,
    };
    println!(
        "training: {} ranks, {} params, {} chunks, {} layers, {iterations} iterations",
        config.num_ranks,
        config.num_params,
        config.num_chunks,
        config.layer_chunk_table.len()
    );

    let mut trainer = Trainer::new(config.clone()).expect("valid config");
    let mut chained_layers = 0usize;
    for i in 0..iterations {
        let early = trainer.step().expect("step succeeds");
        chained_layers += early;
        if i < 3 || i == iterations - 1 {
            println!("  iter {i:>3}: {early} layers chained ahead of the collective");
        }
    }

    assert!(trainer.replicas_agree(), "replicas diverged!");
    let reference = serial_reference(&config, iterations);
    assert_eq!(
        trainer.params(0),
        &reference[..],
        "distributed result differs from the serial reference"
    );
    println!(
        "done: replicas bit-identical and equal to the serial reference; \
         {chained_layers} layer-starts overlapped with communication in total"
    );
}
