//! Byte-stable goldens for the embedded payload of the HTML trace
//! viewer (`ccube trace --html` / `ccube trace --diff --html`).
//!
//! The fixtures pin the **JSON payload only** — the schema contract of
//! DESIGN.md §15, extracted with [`ccube_sim::extract_payload`] — so
//! cosmetic template tweaks (CSS, renderer script) never churn the
//! goldens. A diff here means the payload schema changed: bump the
//! `schema` field and document the change in DESIGN.md §15.
//!
//! To regenerate after an *intentional* contract change:
//!
//! ```text
//! cargo run --bin ccube -- trace --html /tmp/run.html --seed 195
//! cargo run --bin ccube -- trace --diff 7 8 --html /tmp/diff.html
//! # then extract each payload into tests/data/:
//! #   the text between id="ccube-trace-data"> and the next </script>
//! ```

use ccube::experiments::resilience;
use ccube_sim::{extract_payload, sweep_seeded, to_html, NetworkModel, SimTrace};

fn golden(name: &str) -> String {
    let path = format!("{}/../../tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// The `ccube trace --html --seed <seed>` document.
fn single_html(seed: u64) -> String {
    let report = resilience::demo_trace(seed, NetworkModel::ChannelApprox).expect("run simulates");
    let labels = resilience::demo_labels(format!("seed {seed}"), &NetworkModel::ChannelApprox);
    to_html(&report.trace, &labels)
}

/// The `ccube trace --diff <a> <b> --html` document.
fn diff_html(a: u64, b: u64) -> String {
    let net = NetworkModel::ChannelApprox;
    let left = resilience::demo_trace(a, net).expect("left simulates");
    let right = resilience::demo_trace(b, net).expect("right simulates");
    ccube_sim::diff_to_html(
        (
            &left.trace,
            &resilience::demo_labels(format!("seed {a}"), &net),
        ),
        (
            &right.trace,
            &resilience::demo_labels(format!("seed {b}"), &net),
        ),
    )
}

fn assert_well_formed(html: &str) {
    assert!(html.starts_with("<!doctype html>"), "doctype first");
    assert!(html.trim_end().ends_with("</html>"), "closed document");
    assert!(html.contains("id=\"ccube-trace-data\""), "payload marker");
    // Self-contained: no external scripts, styles, or fetches.
    for needle in [
        "src=\"http",
        "href=\"http",
        "src='http",
        "@import",
        "fetch(",
    ] {
        assert!(!html.contains(needle), "external asset via {needle:?}");
    }
}

#[test]
fn single_run_payload_is_byte_stable() {
    let html = single_html(195);
    assert_well_formed(&html);
    let payload = extract_payload(&html).expect("payload embedded");
    assert_eq!(payload, golden("trace_html_single.json").trim_end());
}

#[test]
fn seed_vs_seed_diff_payload_is_byte_stable() {
    let html = diff_html(7, 8);
    assert_well_formed(&html);
    let payload = extract_payload(&html).expect("payload embedded");
    assert_eq!(payload, golden("trace_html_diff.json").trim_end());
}

#[test]
fn payloads_are_byte_stable_at_any_sweep_worker_count() {
    // The viewer rides the same determinism contract as every sweep:
    // generating payloads inside `sweep_seeded` at 1, 2 and 8 workers
    // must reproduce the pinned bytes exactly.
    let seeds: [u64; 2] = [195, 7];
    let reference: Vec<String> = seeds.iter().map(|&s| single_html(s)).collect();
    for workers in [1usize, 2, 8] {
        let swept = sweep_seeded(&seeds, 0, workers, |_, &seed, _| single_html(seed));
        assert_eq!(swept, reference, "worker count {workers} changed bytes");
    }
}

#[test]
fn file_side_round_trips_through_csv() {
    // `ccube trace --diff <file> <seed>` parses the CSV back into a
    // trace; the round trip must be lossless so the file side's scene
    // and diff agree with the live side's.
    let report = resilience::demo_trace(195, NetworkModel::ChannelApprox).expect("run simulates");
    let csv = report.trace.to_csv();
    let parsed = SimTrace::from_csv(&csv).expect("parses back");
    assert_eq!(parsed.to_csv(), csv, "CSV round trip must be lossless");
}

#[test]
fn fabric_demo_has_port_lanes_and_failover_marks() {
    // The `ccube faults --html` figure: k=1 stalls, k=2 fails over.
    let html = resilience::fabric_demo_html(resilience::DEFAULT_SEED);
    assert_well_formed(&html);
    let payload = extract_payload(&html).expect("payload embedded");
    assert!(payload.contains("\"mode\":\"diff\""));
    assert!(payload.contains("\"lane_kind\":\"port\""), "port lanes");
    assert!(payload.contains("sw0.up0"), "fabric graph port labels");
    assert!(
        payload.contains("\"kind\":\"failover\""),
        "the k=2 pane must record failover marks"
    );
}
