//! Byte-stable goldens for `ccube lint --json`.
//!
//! Two cases are pinned: the DGX-1 CC schedule (the conflict-free
//! overlapped double tree — must lint clean) and the deliberately
//! conflicting single-tree embedding whose forced detour shares another
//! edge's channel. The JSON is hand-rolled with stable key order and
//! deterministic (BTreeMap-ordered) diagnostics, so the files must match
//! byte for byte; a diff means the lint output contract changed.
//!
//! To regenerate after an *intentional* contract change:
//!
//! ```text
//! cargo run --bin ccube -- lint dgx1-cc --json   # first array element
//! cargo run --bin ccube -- lint conflict --json
//! ```

use ccube::lint;

fn golden(name: &str) -> String {
    let path = format!("{}/../../tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn dgx1_cc_json_is_byte_stable() {
    let case = lint::run_case("dgx1-cc").expect("known case");
    assert!(case.report.is_clean(), "{}", case.report);
    assert_eq!(case.to_json(), golden("lint_dgx1_cc.json").trim_end());
}

#[test]
fn conflict_json_is_byte_stable() {
    let case = lint::run_case("conflict").expect("known case");
    assert!(!case.report.is_clean(), "the demo must carry errors");
    assert_eq!(case.to_json(), golden("lint_conflict.json").trim_end());
}

#[test]
fn json_runs_are_deterministic() {
    // Same process, repeated runs: byte-identical output (no HashMap
    // iteration order anywhere in the lint path).
    for name in ["dgx1-cc", "conflict", "dgx1-naive-double"] {
        let a = lint::run_case(name).expect("known case").to_json();
        let b = lint::run_case(name).expect("known case").to_json();
        assert_eq!(a, b, "{name}");
    }
}
