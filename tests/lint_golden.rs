//! Byte-stable goldens for `ccube lint --json`.
//!
//! Two cases are pinned: the DGX-1 CC schedule (the conflict-free
//! overlapped double tree — must lint clean) and the deliberately
//! conflicting single-tree embedding whose forced detour shares another
//! edge's channel. The JSON is hand-rolled with stable key order and
//! deterministic (BTreeMap-ordered) diagnostics, so the files must match
//! byte for byte; a diff means the lint output contract changed.
//!
//! To regenerate after an *intentional* contract change:
//!
//! ```text
//! cargo run --bin ccube -- lint dgx1-cc --json   # first array element
//! cargo run --bin ccube -- lint conflict --json
//! ```

use ccube::lint;

fn golden(name: &str) -> String {
    let path = format!("{}/../../tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn dgx1_cc_json_is_byte_stable() {
    let case = lint::run_case("dgx1-cc").expect("known case");
    assert!(case.report.is_clean(), "{}", case.report);
    assert_eq!(case.to_json(), golden("lint_dgx1_cc.json").trim_end());
}

#[test]
fn conflict_json_is_byte_stable() {
    let case = lint::run_case("conflict").expect("known case");
    assert!(!case.report.is_clean(), "the demo must carry errors");
    assert_eq!(case.to_json(), golden("lint_conflict.json").trim_end());
}

#[test]
fn json_runs_are_deterministic() {
    // Same process, repeated runs: byte-identical output (no HashMap
    // iteration order anywhere in the lint path).
    for name in ["dgx1-cc", "conflict", "dgx1-naive-double"] {
        let a = lint::run_case(name).expect("known case").to_json();
        let b = lint::run_case(name).expect("known case").to_json();
        assert_eq!(a, b, "{name}");
    }
}

/// The physical-analyzer goldens: `(case, golden file)` pairs pinned
/// byte for byte. `lint_fabric_skew.json` is the PR 8 hazard — the ring
/// whose cross-leaf crossings all hash to uplink slot 1 — caught
/// statically as eight `CC016` warnings.
const FABRIC_GOLDENS: [(&str, &str); 4] = [
    ("hier16-ring-uplinks", "lint_fabric_skew.json"),
    ("hier16-oversub", "lint_fabric_oversub.json"),
    ("dgx1-cc-physical", "lint_fabric_clean.json"),
    ("severed-ring", "lint_fabric_severed.json"),
];

#[test]
fn fabric_json_is_byte_stable() {
    for (name, file) in FABRIC_GOLDENS {
        let case = lint::run_physical_case(name).expect("known case");
        assert_eq!(case.to_json(), golden(file).trim_end(), "{name}");
    }
}

#[test]
fn fabric_json_runs_are_deterministic() {
    for (name, _) in FABRIC_GOLDENS {
        let a = lint::run_physical_case(name).expect("known case").to_json();
        let b = lint::run_physical_case(name).expect("known case").to_json();
        assert_eq!(a, b, "{name}");
    }
}

/// The CI-gate contract: `ccube lint` exits 1 exactly when the gated
/// report set carries an error-severity diagnostic. `all` exempts the
/// DEMO cases (their errors are the demonstration); naming a case
/// explicitly gates on it, DEMO or not.
#[test]
fn lint_exit_codes_gate_on_errors() {
    let run = |args: &[&str]| {
        std::process::Command::new(env!("CARGO_BIN_EXE_ccube"))
            .arg("lint")
            .args(args)
            .output()
            .expect("ccube runs")
    };
    // Shipped configurations are clean: full runs gate green.
    assert!(run(&["all"]).status.success());
    assert!(run(&["--physical", "all", "--json"]).status.success());
    // A clean named case exits 0, logical or physical.
    assert!(run(&["dgx1-cc"]).status.success());
    assert!(run(&["--physical", "dgx1-cc-physical"]).status.success());
    // A named case with errors exits 1 — the CI gate.
    assert_eq!(run(&["deadlock"]).status.code(), Some(1));
    assert_eq!(run(&["--physical", "severed-ring"]).status.code(), Some(1));
    // Unknown cases are usage errors (2), not lint failures.
    assert_eq!(run(&["nope"]).status.code(), Some(2));
    assert_eq!(run(&["--physical", "nope"]).status.code(), Some(2));
}
