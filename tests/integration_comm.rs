//! Cross-crate integration: logical schedules → DGX-1 embedding →
//! discrete-event simulation, checking the paper's communication-level
//! claims end to end.

use ccube::prelude::*;
use ccube_collectives::cost::{self, CostParams};
use ccube_collectives::verify;

fn dgx1_tree_makespan(n: ByteSize, k: usize, overlap: Overlap) -> (Seconds, Seconds) {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    let s = tree_allreduce(dt.trees(), &Chunking::even(n, k), overlap);
    verify::check_allreduce(&s).expect("schedule must be a correct AllReduce");
    let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
    let r = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
    (r.makespan(), r.turnaround())
}

#[test]
fn c1_beats_b_by_the_papers_margin_on_dgx1() {
    // Paper Fig. 12(a): 75% at 64 MB, up to 80% for larger sizes.
    for mib in [64u64, 128, 256] {
        let n = ByteSize::mib(mib);
        let k = cost::k_opt(&CostParams::nvlink(), 8, n).div_ceil(2) * 2;
        let (tb, _) = dgx1_tree_makespan(n, k, Overlap::None);
        let (to, _) = dgx1_tree_makespan(n, k, Overlap::ReductionBroadcast);
        let improvement = tb / to - 1.0;
        assert!(
            (0.5..1.0).contains(&improvement),
            "{mib} MiB: improvement {improvement:.3}"
        );
    }
}

#[test]
fn gradient_turnaround_collapses_under_overlap() {
    let n = ByteSize::mib(64);
    let k = cost::k_opt(&CostParams::nvlink(), 8, n).div_ceil(2) * 2;
    let (_, turn_b) = dgx1_tree_makespan(n, k, Overlap::None);
    let (_, turn_o) = dgx1_tree_makespan(n, k, Overlap::ReductionBroadcast);
    assert!(
        turn_b / turn_o > 5.0,
        "turnaround speedup {:.1}",
        turn_b / turn_o
    );
}

#[test]
fn dgx1_embedding_never_touches_the_host_bridge() {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    for overlap in [Overlap::None, Overlap::ReductionBroadcast] {
        let s = tree_allreduce(dt.trees(), &Chunking::even(ByteSize::mib(16), 8), overlap);
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        for route in e.routes().values() {
            assert_ne!(route.class(), ChannelClass::HostBridge);
            assert!(route.channels().len() <= 2);
        }
    }
}

#[test]
fn conflicting_embedding_degrades_the_overlapped_double_tree() {
    // The paper's §IV-A conflict: without the physical-topology-aware
    // placement, the two trees share channels and overlap loses its
    // benefit. The identity placement on the DGX-1 exhibits exactly this.
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    let n = ByteSize::mib(64);
    let k = 64;
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(n, k),
        Overlap::ReductionBroadcast,
    );
    let good = Embedding::dgx1_double_tree(&topo, &s).unwrap();
    let naive = Embedding::identity(&topo, &s).unwrap();
    assert!(good.conflicts().is_empty());
    assert!(!naive.conflicts().is_empty());
    let t_good = simulate(&topo, &s, &good, &SimOptions::default())
        .unwrap()
        .makespan();
    let t_naive = simulate(&topo, &s, &naive, &SimOptions::default())
        .unwrap()
        .makespan();
    assert!(
        t_naive.as_secs_f64() > t_good.as_secs_f64() * 1.2,
        "naive {t_naive} vs aware {t_good}"
    );
}

#[test]
fn nccl_style_multi_ring_beats_the_baseline_tree_at_small_scale() {
    // The paper's R baseline is NCCL's multi-ring: the DGX-1's NVLink
    // graph decomposes into three Hamiltonian cycles, each usable in both
    // directions — six rings striping the message. With that aggregate
    // bandwidth the ring beats the two-link double tree on 8 nodes.
    let topo = dgx1();
    let n = ByteSize::mib(256);
    let cycles = ccube_topology::disjoint_rings(&topo, 3);
    assert_eq!(cycles.len(), 3);
    let mut orders: Vec<Vec<Rank>> = Vec::new();
    for c in &cycles {
        let fwd: Vec<Rank> = c.iter().map(|g| Rank(g.0)).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        orders.push(fwd);
        orders.push(rev);
    }
    let ring = ring_allreduce_multi(n, &orders);
    ccube_collectives::verify::check_allreduce(&ring).unwrap();
    let er = Embedding::identity(&topo, &ring).unwrap();
    // Every ring edge is a real NVLink, so the embedding is direct and
    // conflict-free.
    assert!(er.conflicts().is_empty());
    assert!(er.routes().values().all(|r| !r.is_detour()));
    let tr = simulate(&topo, &ring, &er, &SimOptions::default())
        .unwrap()
        .makespan();

    let k = cost::k_opt(&CostParams::nvlink(), 8, n).div_ceil(2) * 2;
    let (tb, _) = dgx1_tree_makespan(n, k, Overlap::None);
    assert!(
        tr < tb,
        "multi-ring {tr} should beat the baseline tree {tb}"
    );

    // A single ring, by contrast, is limited to one link and loses.
    let single = ring_allreduce(8, n);
    let es = Embedding::identity(&topo, &single).unwrap();
    let ts = simulate(&topo, &single, &es, &SimOptions::default())
        .unwrap()
        .makespan();
    assert!(ts > tr * 3.0, "single ring {ts} vs multi-ring {tr}");
}

#[test]
fn low_bandwidth_mode_scales_all_algorithms() {
    let topo = dgx1();
    let n = ByteSize::mib(64);
    let ring = ring_allreduce(8, n);
    let e = Embedding::identity(&topo, &ring).unwrap();
    let hi = simulate(&topo, &ring, &e, &SimOptions::default()).unwrap();
    let lo = simulate(&topo, &ring, &e, &SimOptions::low_bandwidth()).unwrap();
    let ratio = lo.makespan() / hi.makespan();
    assert!((3.0..4.2).contains(&ratio), "ratio {ratio}");
}

#[test]
fn detour_gpus_accumulate_forwarding_time() {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(64), 32),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
    let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
    let fwd = report.forwarding_busy();
    assert_eq!(fwd.len(), 2, "two forwarding GPUs: {fwd:?}");
    for (gpu, busy) in fwd {
        // Each forwarder runs two kernels (one per direction) that can be
        // busy concurrently, so the summed busy time is bounded by twice
        // the makespan.
        assert!(
            *busy > Seconds::ZERO && *busy < report.makespan() * 2.0,
            "{gpu}: {busy} vs makespan {}",
            report.makespan()
        );
    }
}

#[test]
fn ring_delivery_is_out_of_order_unlike_trees() {
    // Observation #3's negative half: the ring's reduce-scatter leaves
    // every rank owning a *different* chunk, so per-rank completion is
    // not in chunk order — which is exactly why gradient queuing (a
    // count-based in-order gate) cannot be chained onto the ring.
    let topo = dgx1();
    let s = ring_allreduce(8, ByteSize::mib(8));
    let e = Embedding::identity(&topo, &s).unwrap();
    let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();

    // Per-rank "done" times for consecutive chunks must invert somewhere:
    // rank r finishes its own chunk (r+1) during reduce-scatter, long
    // before it receives earlier-numbered chunks in the all-gather.
    let mut inverted = false;
    for r in 0..8u32 {
        for c in 1..8u32 {
            let prev = report.done_at(Rank(r), ChunkId(c - 1));
            let this = report.done_at(Rank(r), ChunkId(c));
            if this < prev {
                inverted = true;
            }
        }
    }
    assert!(inverted, "ring delivery unexpectedly in order");

    // While the overlapped double tree stays in order per tree.
    let dt = DoubleBinaryTree::new(8).unwrap();
    let ts = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(8), 16),
        Overlap::ReductionBroadcast,
    );
    let te = Embedding::dgx1_double_tree(&topo, &ts).unwrap();
    let tr = simulate(&topo, &ts, &te, &SimOptions::default()).unwrap();
    assert!(tr.chunks_in_order(2));
}

#[test]
fn trace_export_is_complete_and_ordered() {
    let topo = dgx1();
    let s = ring_allreduce(8, ByteSize::mib(1));
    let e = Embedding::identity(&topo, &s).unwrap();
    let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
    let csv = report.trace_csv(&s);
    // header + one row per transfer
    assert_eq!(csv.lines().count(), 1 + s.transfers().len());
    assert!(csv.starts_with("transfer_id,"));
}
