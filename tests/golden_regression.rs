//! Bit-level regression fixtures for the paper-figure experiments.
//!
//! `tests/data/*_golden.csv` hold the fig12/14/15 rows at full `f64`
//! precision, captured from the engines before they were rebuilt on the
//! shared DES kernel. Every row must stay within 1e-9 relative of the
//! fixture — in practice the kernel reproduces the historical event
//! order exactly and the rows are bit-identical. Regenerate the fixtures
//! with `cargo run --release --example golden_dump` only after an
//! *intentional* model change.

use ccube::experiments::{fig12, fig14, fig15, resilience, scaleout_fabric};
use ccube_topology::ByteSize;

const REL_TOL: f64 = 1e-9;

fn close(actual: f64, golden: f64, what: &str) {
    let scale = golden.abs().max(1e-300);
    let rel = (actual - golden).abs() / scale;
    assert!(
        rel <= REL_TOL,
        "{what}: {actual:e} drifted from golden {golden:e} (rel {rel:e})"
    );
}

fn load(name: &str) -> Vec<Vec<f64>> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/data/");
    let text = std::fs::read_to_string(format!("{path}{name}"))
        .unwrap_or_else(|e| panic!("missing fixture {name}: {e}"));
    text.lines()
        .skip(1)
        .map(|l| {
            l.split(',')
                .map(|f| f.parse::<f64>().expect("numeric field"))
                .collect()
        })
        .collect()
}

#[test]
fn ext_resilience_csv_matches_golden_byte_for_byte() {
    // Unlike the figure fixtures, the resilience rows carry string
    // columns (topology/mode/status), so the fixture is compared as the
    // rendered CSV: the sweep contract guarantees the default seed
    // reproduces it byte-for-byte at any worker count.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/ext_resilience_golden.csv"
    );
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing fixture ext_resilience_golden.csv: {e}"));
    let actual = resilience::to_csv(&resilience::run());
    assert_eq!(
        actual, golden,
        "ext_resilience.csv drifted from the golden fixture"
    );
}

#[test]
fn ext_fabric_resilience_csv_matches_golden_byte_for_byte() {
    // The multi-uplink failover study: the same seeded uplink-outage
    // plan replayed across slot counts and steering policies. Beyond
    // byte-identity, the fixture itself must witness the recovery
    // property — the 2-uplink failover row records reroutes and a
    // strictly lower slowdown than the single-uplink fabric.
    let actual = resilience::fabric_to_csv(&resilience::run_fabric());
    assert_eq!(
        actual,
        load_csv_fixture("ext_fabric_resilience_golden.csv"),
        "ext_fabric_resilience.csv drifted from the golden fixture"
    );
}

/// Loads a rendered-CSV fixture from `tests/data/`.
fn load_csv_fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {name}: {e}"))
}

#[test]
fn ext_scaleout_fabric_csv_matches_golden_byte_for_byte() {
    // Like the resilience fixture, these rows carry string columns, so
    // the comparison is on the rendered CSV. The passthrough `switch`
    // rows must stay byte-identical to the `approx` rows — this fixture
    // is the end-to-end record of the fabric ≡ approximation contract.
    assert_eq!(
        scaleout_fabric::fabric_to_csv(&scaleout_fabric::fabric_study()),
        load_csv_fixture("ext_scaleout_fabric_golden.csv"),
        "ext_scaleout_fabric.csv drifted from the golden fixture"
    );
}

#[test]
fn ext_nvswitch_sweep_csv_matches_golden_byte_for_byte() {
    assert_eq!(
        scaleout_fabric::sweep_to_csv(&scaleout_fabric::nvswitch_sweep()),
        load_csv_fixture("ext_nvswitch_sweep_golden.csv"),
        "ext_nvswitch_sweep.csv drifted from the golden fixture"
    );
}

#[test]
fn ext_torus_sweep_csv_matches_golden_byte_for_byte() {
    assert_eq!(
        scaleout_fabric::sweep_to_csv(&scaleout_fabric::torus_sweep()),
        load_csv_fixture("ext_torus_sweep_golden.csv"),
        "ext_torus_sweep.csv drifted from the golden fixture"
    );
}

#[test]
fn fig12_rows_match_golden() {
    let golden = load("fig12_golden.csv");
    let rows = fig12::run();
    assert_eq!(rows.len(), golden.len(), "fig12 row count changed");
    for (r, g) in rows.iter().zip(&golden) {
        let what = format!("fig12 n={}", r.n.as_u64());
        assert_eq!(r.n.as_u64(), g[0] as u64, "{what}: size column");
        assert_eq!(r.k, g[1] as usize, "{what}: k column");
        close(r.t_baseline.as_secs_f64(), g[2], &what);
        close(r.t_overlapped.as_secs_f64(), g[3], &what);
        close(r.improvement_sim, g[4], &what);
    }
}

#[test]
fn fig14_rows_match_golden() {
    let golden = load("fig14_golden.csv");
    let rows = fig14::run_with(
        &[4, 8, 16, 32, 64],
        &[ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(64)],
    );
    assert_eq!(rows.len(), golden.len(), "fig14 row count changed");
    for (r, g) in rows.iter().zip(&golden) {
        let what = format!("fig14 p={} n={}", r.p, r.n.as_u64());
        assert_eq!(r.p, g[0] as usize, "{what}: p column");
        assert_eq!(r.n.as_u64(), g[1] as u64, "{what}: size column");
        assert_eq!(r.k, g[2] as usize, "{what}: k column");
        close(r.t_ring.as_secs_f64(), g[3], &what);
        close(r.t_c1.as_secs_f64(), g[4], &what);
        close(r.t_b.as_secs_f64(), g[5], &what);
        close(r.turnaround_speedup, g[6], &what);
    }
}

#[test]
fn fig15_rows_match_golden() {
    let golden = load("fig15_golden.csv");
    let rows = fig15::run();
    assert_eq!(rows.len(), golden.len(), "fig15 row count changed");
    for (r, g) in rows.iter().zip(&golden) {
        let what = format!("fig15 gpu={}", r.gpu);
        assert_eq!(r.gpu, g[0] as u32, "{what}: gpu column");
        assert_eq!(r.forward_kernels, g[1] as usize, "{what}: kernels column");
        close(r.forwarding_busy.as_secs_f64(), g[2], &what);
        close(r.normalized_perf, g[3], &what);
    }
}
