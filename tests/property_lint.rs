//! Property-based agreement between the static analyzer and the rest of
//! the stack, over randomized rank counts, chunk counts and overlap modes:
//!
//! * every generated schedule lints clean, completes under the symbolic
//!   verifier, and (embedded) passes the simulator's static gate;
//! * dropping a data-carrying dependency is always caught as a dataflow
//!   race (CC005) even though id-order symbolic replay still passes;
//! * remapping a logical edge onto a channel with the wrong endpoints is
//!   always caught as an invalid route (CC008).

use ccube_collectives::analyze::{analyze, analyze_embedded, gate};
use ccube_collectives::verify::check_allreduce;
use ccube_collectives::{
    ring_allreduce, tree_allreduce, AnalyzeOptions, Chunking, DoubleBinaryTree, EdgeKey, Embedding,
    LintCode, Overlap, Schedule, Severity, TransferId,
};
use ccube_runtime::protocol::{DEFAULT_RING_MAILBOX_CAPACITY, DEFAULT_TREE_MAILBOX_CAPACITY};
use ccube_topology::{dgx1, ByteSize, ChannelClass, Route};
use proptest::prelude::*;

fn overlap_strategy() -> impl Strategy<Value = Overlap> {
    prop_oneof![Just(Overlap::None), Just(Overlap::ReductionBroadcast)]
}

fn opts(capacity: usize) -> AnalyzeOptions {
    AnalyzeOptions {
        mailbox_capacity: Some(capacity),
        ..AnalyzeOptions::default()
    }
}

/// Drop every data-carrying dependency (same chunk, producing into the
/// transfer's source or destination buffer) from the first transfer that
/// has one. Returns `None` when no transfer carries such a dependency.
fn drop_data_dep(s: &Schedule) -> Option<Schedule> {
    let mut transfers = s.transfers().to_vec();
    let carries = |t: &ccube_collectives::Transfer, d: &TransferId| {
        let dep = &s.transfers()[d.index()];
        dep.chunk == t.chunk && (dep.dst == t.src || dep.dst == t.dst)
    };
    let victim = transfers
        .iter()
        .position(|t| t.deps.iter().any(|d| carries(t, d)))?;
    let t = transfers[victim].clone();
    transfers[victim].deps.retain(|d| !carries(&t, d));
    Some(Schedule::new(
        s.algorithm().to_string(),
        s.num_ranks(),
        s.chunking().clone(),
        transfers,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn clean_lint_agrees_with_the_verifier_for_rings(p in 2usize..24, kib in 1u64..512) {
        let s = ring_allreduce(p, ByteSize::kib(kib));
        let report = analyze(&s, &opts(DEFAULT_RING_MAILBOX_CAPACITY));
        prop_assert!(report.is_clean(), "{report}");
        prop_assert_eq!(report.count(Severity::Warn), 0);
        check_allreduce(&s).unwrap();
    }

    #[test]
    fn clean_lint_agrees_with_the_verifier_for_trees(
        p in 2usize..20,
        k in 2usize..24,
        overlap in overlap_strategy(),
    ) {
        let dt = DoubleBinaryTree::new(p).unwrap();
        let s = tree_allreduce(dt.trees(), &Chunking::even(ByteSize::kib(256), k), overlap);
        let report = analyze(&s, &opts(DEFAULT_TREE_MAILBOX_CAPACITY));
        prop_assert!(report.is_clean(), "{report}");
        prop_assert_eq!(report.count(Severity::Warn), 0);
        check_allreduce(&s).unwrap();
    }

    #[test]
    fn dropped_data_dependency_is_always_a_race(
        p in 3usize..16,
        k in 2usize..16,
        overlap in overlap_strategy(),
    ) {
        let dt = DoubleBinaryTree::new(p).unwrap();
        let good = tree_allreduce(dt.trees(), &Chunking::even(ByteSize::kib(256), k), overlap);
        let mutated = drop_data_dep(&good).expect("double trees carry data deps");
        // The id-order symbolic replay still passes: the bug is invisible
        // to the completion check, only the analyzer's ordering pass sees it.
        check_allreduce(&mutated).unwrap();
        let report = analyze(&mutated, &AnalyzeOptions::default());
        prop_assert!(
            report.diagnostics().iter().any(|d| d.code == LintCode::DataflowRace),
            "{report}"
        );
    }

    #[test]
    fn wrong_endpoint_remap_is_always_an_invalid_route(
        kib in 1u64..256,
        edge_seed in 0usize..64,
        chan_seed in 0usize..64,
    ) {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::kib(kib));
        let mut emb = Embedding::identity(&topo, &s).unwrap();
        prop_assert!(gate(&s, &emb, &topo).is_clean());

        let edges = s.logical_edges();
        let (src, dst, tree) = edges[edge_seed % edges.len()];
        let edge = EdgeKey { src, dst, tree };
        let wrong_src: Vec<_> = topo
            .channels()
            .iter()
            .filter(|c| c.src() != emb.gpu_of(edge.src))
            .collect();
        let wrong = wrong_src[chan_seed % wrong_src.len()];
        emb.set_route(
            edge,
            Route::multi(
                emb.gpu_of(edge.src),
                emb.gpu_of(edge.dst),
                vec![wrong.id()],
                ChannelClass::NvLink,
            ),
        );
        let report = gate(&s, &emb, &topo);
        prop_assert!(
            report.diagnostics().iter().any(|d| d.code == LintCode::InvalidRoute),
            "{report}"
        );
    }

    #[test]
    fn embedded_double_trees_pass_the_gate(k in 2usize..24, overlap in overlap_strategy()) {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let s = tree_allreduce(dt.trees(), &Chunking::even(ByteSize::kib(512), k), overlap);
        let emb = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        prop_assert!(gate(&s, &emb, &topo).is_clean());
        let report = analyze_embedded(&s, &emb, &topo, &opts(DEFAULT_TREE_MAILBOX_CAPACITY));
        prop_assert!(report.is_clean(), "{report}");
    }
}
