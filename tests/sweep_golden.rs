//! Golden determinism of the parallel experiment drivers.
//!
//! The sweep executor's contract — output bit-identical to serial at any
//! worker count — asserted end-to-end on the real drivers: `run_all`'s
//! CSV files compared **byte for byte** across worker counts, and the
//! row-producing sweeps compared as values.

use ccube::experiments;
use std::collections::BTreeMap;
use std::path::Path;

/// Reads every regular file under `dir` into (name -> bytes).
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        out.insert(name, std::fs::read(entry.path()).unwrap());
    }
    out
}

#[test]
fn run_all_is_byte_identical_across_worker_counts() {
    let base = std::env::temp_dir().join(format!("ccube_sweep_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let dir = base.join(format!("t{threads}"));
        let paths = experiments::run_all_with(&dir, threads).unwrap();
        assert_eq!(paths.len(), 20);
        let contents = dir_contents(&dir);
        match &reference {
            None => reference = Some(contents),
            Some(serial) => {
                assert_eq!(
                    serial.keys().collect::<Vec<_>>(),
                    contents.keys().collect::<Vec<_>>()
                );
                for (name, bytes) in &contents {
                    assert_eq!(
                        bytes, &serial[name],
                        "{name} differs between 1 and {threads} workers"
                    );
                }
            }
        }
    }

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn fig14_sweep_rows_are_identical_across_worker_counts() {
    let ps = [8usize, 16, 32];
    let ns = [
        ccube_topology::ByteSize::kib(16),
        ccube_topology::ByteSize::mib(1),
    ];
    let serial = experiments::fig14::run_with_threads(&ps, &ns, 1);
    for threads in [2, 8] {
        let parallel = experiments::fig14::run_with_threads(&ps, &ns, threads);
        assert_eq!(serial, parallel, "{threads} workers diverged");
    }
}

#[test]
fn resilience_rows_are_identical_across_worker_counts_and_replays() {
    use ccube::experiments::resilience;

    // A fault plan replayed from the same seed must produce bit-identical
    // reports whether the grid runs serially or fanned out: each point's
    // RNG is forked from (seed, point index), never from worker state.
    let serial = resilience::run_with(resilience::DEFAULT_SEED, 1);
    for threads in [2usize, 8] {
        let parallel = resilience::run_with(resilience::DEFAULT_SEED, threads);
        assert_eq!(serial, parallel, "{threads} workers diverged");
    }
    // Replaying the seed reproduces the rows exactly (same CSV bytes).
    let replay = resilience::run_with(resilience::DEFAULT_SEED, 8);
    assert_eq!(
        resilience::to_csv(&serial),
        resilience::to_csv(&replay),
        "seed replay is not byte-identical"
    );
    // The fabric-failover study holds to the same contract.
    let fabric_serial = resilience::run_fabric_with(resilience::DEFAULT_SEED, 1);
    for threads in [2usize, 8] {
        let parallel = resilience::run_fabric_with(resilience::DEFAULT_SEED, threads);
        assert_eq!(
            resilience::fabric_to_csv(&fabric_serial),
            resilience::fabric_to_csv(&parallel),
            "fabric study: {threads} workers diverged"
        );
    }
}

#[test]
fn policy_search_is_identical_across_worker_counts() {
    let serial = experiments::policy_search::run_with_threads(1);
    for threads in [2, 8] {
        assert_eq!(
            serial,
            experiments::policy_search::run_with_threads(threads)
        );
    }
    // Exactly one winner per topology, found end-to-end.
    for topo in ["dgx1", "hier16"] {
        let best = experiments::policy_search::best_for(&serial, topo);
        assert!(best.makespan > ccube_topology::Seconds::ZERO);
    }
}
