//! Cross-validation between the three back ends: the analytic arrival
//! model, the discrete-event simulator, and the unit-step replayer must
//! agree wherever their assumptions coincide (conflict-free embeddings,
//! no contention).

use ccube::arrivals::ChunkArrivals;
use ccube::pipeline::{Mode, TrainingPipeline};
use ccube_collectives::cost::{self, CostParams};
use ccube_collectives::{
    ring_allreduce, tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap,
};
use ccube_sim::{simulate, SimOptions};
use ccube_topology::{dgx1, ByteSize};

/// On the conflict-free DGX-1 embedding, the DES chunk arrivals must
/// match the analytic staged model chunk by chunk (up to the detour
/// forwarding latency, a sub-percent correction).
#[test]
fn des_arrivals_match_analytic_model_on_dgx1() {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    let params = CostParams::nvlink();
    let n = ByteSize::mib(64);
    let k = cost::k_opt(&params, 8, n).div_ceil(2) * 2;
    // Per-tree traffic is half the message; the analytic model prices a
    // single tree, so evaluate it at the per-tree chunk size with the
    // per-tree chunk count.
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(n, k),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
    let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
    let des = ChunkArrivals::from_sim(&report);

    let chunk_bytes = ByteSize::new(n.as_u64() / k as u64);
    let model =
        ChunkArrivals::analytic_tree(8, 2, k, chunk_bytes, &params, Overlap::ReductionBroadcast);

    for c in 0..k {
        let sim = des.times()[c].as_secs_f64();
        let ana = model.times()[c].as_secs_f64();
        let rel = (sim - ana).abs() / ana;
        assert!(
            rel < 0.08,
            "chunk {c}: sim {sim:.6}s vs model {ana:.6}s ({:.1}% off)",
            rel * 100.0
        );
    }
}

/// Feeding DES arrivals into the pipeline must give nearly the same
/// C-Cube iteration as the analytic arrivals.
#[test]
fn pipeline_with_sim_arrivals_matches_analytic_pipeline() {
    let net = ccube_dnn::resnet50();
    let pipeline = TrainingPipeline::dgx1(&net, 64);
    let analytic = pipeline.iteration(Mode::CCube);

    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    let k = pipeline.num_chunks();
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(net.total_param_bytes(), k),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
    let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
    let simulated =
        pipeline.iteration_with_arrivals(Mode::CCube, &ChunkArrivals::from_sim(&report));

    let rel = (simulated.t_iter.as_secs_f64() - analytic.t_iter.as_secs_f64()).abs()
        / analytic.t_iter.as_secs_f64();
    assert!(
        rel < 0.02,
        "iteration time: sim-fed {} vs analytic {} ({:.2}% off)",
        simulated.t_iter,
        analytic.t_iter,
        rel * 100.0
    );
}

/// For the ring, Eq. 2 and the DES must agree on an uncongested
/// embedding (the DES adds only the detour hops' extra latency).
#[test]
fn des_ring_matches_eq2() {
    let topo = dgx1();
    let params = CostParams::nvlink();
    for mib in [4u64, 64] {
        let n = ByteSize::mib(mib);
        let s = ring_allreduce(8, n);
        let e = Embedding::identity(&topo, &s).unwrap();
        let sim = simulate(&topo, &s, &e, &SimOptions::default())
            .unwrap()
            .makespan()
            .as_secs_f64();
        let model = cost::t_ring(&params, 8, n).as_secs_f64();
        // The identity ring 0->1->...->7->0 has two detour legs on the
        // DGX-1 (3->4 and 7->0 have no direct NVLink), so the DES pays
        // one extra hop latency on 2 of 8 legs per step — a ~9% effect
        // at 4 MiB that vanishes as serialization dominates.
        let rel = (sim - model).abs() / model;
        assert!(rel < 0.10, "{mib} MiB: sim {sim:.6} vs Eq.2 {model:.6}");
        assert!(sim >= model, "the DES can only add latency");
    }
}

/// Unit-step replay and DES agree on relative chunk ordering for the
/// overlapped tree.
#[test]
fn unit_step_and_des_agree_on_order() {
    use ccube_collectives::verify::{execute_steps, ChannelKeying};
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(16), 16),
        Overlap::ReductionBroadcast,
    );
    let steps = execute_steps(&s, ChannelKeying::PerTree).unwrap();
    let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
    let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();

    // Within each tree's parity class, both executions complete chunks in
    // the same (ascending) order.
    assert!(report.chunks_in_order(2));
    assert!(steps.chunks_in_order(2));
    // And both agree on which chunk finishes first overall.
    let des_first = report
        .chunk_completions()
        .iter()
        .enumerate()
        .min_by_key(|(_, &t)| t)
        .unwrap()
        .0;
    let step_first = steps
        .chunk_complete_step
        .iter()
        .enumerate()
        .min_by_key(|(_, &s)| s)
        .unwrap()
        .0;
    assert_eq!(des_first, step_first);
}
