//! Property-based certificates for the physical analyzer:
//!
//! * the channel-level `makespan_lower_bound` never exceeds the DES
//!   makespan under the channel approximation, over random schedules,
//!   embeddings and chunkings;
//! * the port-level `fabric_lower_bound` never exceeds the fabric
//!   engine's makespan, over random leaf/spine shapes — multi-uplink,
//!   oversubscribed, store-and-forward, and adaptive-policy draws
//!   included;
//! * the severance pass agrees with the fault engine: sampled (finite)
//!   plans never classify as severed and never drain `Unroutable`, and
//!   handcrafted permanent outages match the engine outcome exactly in
//!   both directions.

use ccube_collectives::analyze::LintCode;
use ccube_collectives::{
    fabric_lower_bound, makespan_lower_bound, ring_allreduce, tree_allreduce, Chunking,
    DoubleBinaryTree, Embedding, LinkTiming, Overlap, PhysicalAnalyzeOptions, Schedule,
};
use ccube_sim::{
    analyze_severance, forever, simulate, simulate_faulted, FabricSpec, FaultEvent, FaultModel,
    FaultPlan, HopMode, SimError, SimOptions, SimRng, UplinkPolicy,
};
use ccube_topology::{dgx1, hierarchical, ByteSize, ChannelClass, ChannelId, Seconds, Topology};
use proptest::prelude::*;

/// `bound <= makespan`, with one ulp-scale tolerance for the float-op
/// reassociation between the analyzer's sums and the engine's clock.
fn holds(bound: Seconds, makespan: Seconds) -> bool {
    bound.as_secs_f64() <= makespan.as_secs_f64() * (1.0 + 1e-9)
}

/// One random (topology, schedule, embedding) draw shared by the bound
/// properties. `case` selects the machine/algorithm pairing, `kib` the
/// message size, `k` the chunk count.
fn draw_candidate(case: usize, kib: u64, k: usize) -> (Topology, Schedule, Embedding) {
    let n = ByteSize::kib(kib);
    match case {
        0 => {
            let topo = dgx1();
            let s = ring_allreduce(8, n);
            let e = Embedding::identity(&topo, &s).expect("embeddable");
            (topo, s, e)
        }
        1 => {
            let topo = dgx1();
            let dt = DoubleBinaryTree::new(8).expect("valid");
            let s = tree_allreduce(
                dt.trees(),
                &Chunking::even(n, 2 * k),
                Overlap::ReductionBroadcast,
            );
            let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
            (topo, s, e)
        }
        2 => {
            let topo = hierarchical(8);
            let s = ring_allreduce(8, n);
            let e = Embedding::nic(&topo, &s).expect("embeddable");
            (topo, s, e)
        }
        _ => {
            let topo = hierarchical(16);
            let dt = DoubleBinaryTree::new(16).expect("valid");
            let s = tree_allreduce(dt.trees(), &Chunking::even(n, 2 * k), Overlap::None);
            let e = Embedding::nic(&topo, &s).expect("embeddable");
            (topo, s, e)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn channel_bound_never_exceeds_des_makespan(
        case in 0usize..4,
        kib in 8u64..2048,
        k in 1usize..9,
    ) {
        let (topo, s, e) = draw_candidate(case, kib, k);
        let opts = SimOptions::default().without_trace();
        let bound = makespan_lower_bound(&s, &e, &topo, &LinkTiming::default())
            .expect("shipped candidates lower");
        let report = simulate(&topo, &s, &e, &opts).expect("simulates");
        prop_assert!(
            holds(bound, report.makespan()),
            "case {case}: bound {bound} > makespan {}",
            report.makespan()
        );
        prop_assert!(bound > Seconds::ZERO);
    }

    #[test]
    fn fabric_bound_never_exceeds_fabric_makespan(
        case in 0usize..4,
        kib in 8u64..1024,
        k in 1usize..5,
        uplinks in 1usize..4,
        spines in 1usize..3,
        oversub in prop_oneof![Just(1.0f64), Just(2.0), Just(4.0)],
        store_forward in prop_oneof![Just(false), Just(true)],
        policy in prop_oneof![
            Just(UplinkPolicy::Hash),
            Just(UplinkPolicy::LeastQueued),
            Just(UplinkPolicy::Failover),
        ],
    ) {
        let (topo, s, e) = draw_candidate(case, kib, k);
        // Hierarchical machines get a real leaf/spine split; the DGX-1
        // keeps the degenerate single-switch shape.
        let radix = if topo.num_gpus() > 8 { Some(4) } else { None };
        let spec = FabricSpec {
            radix,
            oversubscription: oversub,
            uplink_latency: Seconds::from_micros(1.0),
            hop_mode: if store_forward {
                HopMode::StoreForward
            } else {
                HopMode::CutThrough
            },
            spines,
            uplinks,
            uplink_policy: policy,
        };
        let opts = SimOptions::default()
            .with_network(ccube_sim::NetworkModel::SwitchFabric(spec))
            .without_trace();
        let fabric = ccube_topology::FabricGraph::from_topology(
            &topo,
            &ccube_topology::FabricConfig {
                radix,
                oversubscription: oversub,
                uplink_latency: Seconds::from_micros(1.0),
                spines,
                uplinks_per_leaf: uplinks,
            },
        );
        let popts = PhysicalAnalyzeOptions {
            timing: LinkTiming::default(),
            store_forward,
        };
        let bound = fabric_lower_bound(&s, &e, &topo, &fabric, &popts)
            .expect("shipped candidates lower onto their own fabric");
        let report = simulate(&topo, &s, &e, &opts).expect("simulates");
        prop_assert!(
            holds(bound, report.makespan()),
            "case {case} uplinks {uplinks} spines {spines} oversub {oversub} \
             sf {store_forward} {}: bound {bound} > makespan {}",
            policy.label(),
            report.makespan()
        );
        prop_assert!(bound > Seconds::ZERO);
    }

    #[test]
    fn severance_agrees_with_fault_engine_on_sampled_plans(
        seed in 0u64..48,
        level in 1u32..4,
        fabric in prop_oneof![Just(false), Just(true)],
    ) {
        let topo = hierarchical(8);
        let s = ring_allreduce(8, ByteSize::mib(4));
        let e = Embedding::nic(&topo, &s).expect("embeddable");
        let base = SimOptions::default().without_trace();
        let opts = if fabric {
            base.with_network(ccube_sim::NetworkModel::SwitchFabric(FabricSpec {
                radix: Some(4),
                uplinks: 2,
                spines: 2,
                ..FabricSpec::passthrough()
            }))
        } else {
            base
        };
        let healthy = simulate(&topo, &s, &e, &opts).expect("simulates").makespan();
        let model = FaultModel::severity(level, healthy);
        let plan = FaultPlan::sample(&model, &topo, &SimRng::new(seed));
        let report = analyze_severance(&plan, &topo, &s, &e, &opts);
        // Sampled windows are always finite, so nothing is ever severed
        // statically...
        prop_assert!(
            report.diagnostics().iter().all(|d| d.code != LintCode::FaultSevered),
            "{report}"
        );
        // ...and the engine never drains Unroutable on the same plan.
        let sim = simulate_faulted(&topo, &s, &e, &opts, &plan);
        prop_assert!(
            !matches!(sim, Err(SimError::Unroutable { .. })),
            "engine unroutable on a finite plan"
        );
    }
}

/// Handcrafted permanent plans where the static classification and the
/// engine outcome must agree exactly, in both directions.
#[test]
fn severance_matches_engine_on_permanent_plans() {
    let opts = SimOptions::default().without_trace();

    // A permanently-down NIC injection channel: structural, no reroute.
    // Static says severed; the engine drains Unroutable.
    let topo = hierarchical(8);
    let s = ring_allreduce(8, ByteSize::mib(4));
    let e = Embedding::nic(&topo, &s).expect("embeddable");
    let plan = FaultPlan::new(vec![FaultEvent::LinkDown {
        channel: ChannelId(0),
        from: Seconds::ZERO,
        until: forever(),
    }])
    .expect("valid plan");
    let report = analyze_severance(&plan, &topo, &s, &e, &opts);
    assert!(report
        .diagnostics()
        .iter()
        .any(|d| d.code == LintCode::FaultSevered));
    assert!(matches!(
        simulate_faulted(&topo, &s, &e, &opts, &plan),
        Err(SimError::Unroutable { .. })
    ));

    // A permanently-down NVLink on the DGX-1: the router finds a detour.
    // Static says reroutable; the engine completes.
    let topo = dgx1();
    let s = ring_allreduce(8, ByteSize::mib(4));
    let e = Embedding::identity(&topo, &s).expect("embeddable");
    let used = topo
        .channels()
        .iter()
        .map(|c| c.id())
        .find(|&c| topo.channel(c).class() == ChannelClass::NvLink)
        .expect("dgx1 has NVLinks");
    let plan = FaultPlan::new(vec![FaultEvent::LinkDown {
        channel: used,
        from: Seconds::ZERO,
        until: forever(),
    }])
    .expect("valid plan");
    let report = analyze_severance(&plan, &topo, &s, &e, &opts);
    assert!(
        report
            .diagnostics()
            .iter()
            .all(|d| d.code != LintCode::FaultSevered),
        "{report}"
    );
    assert!(simulate_faulted(&topo, &s, &e, &opts, &plan).is_ok());

    // A single-uplink fabric losing its only slot forever: severed, and
    // the engine drains Unroutable. With a second slot and the failover
    // policy, both sides recover.
    let topo = hierarchical(8);
    let s = ring_allreduce(8, ByteSize::mib(4));
    let e = Embedding::nic(&topo, &s).expect("embeddable");
    let outage = |leaf, uplink| {
        FaultPlan::new(vec![FaultEvent::UplinkDown {
            leaf,
            uplink,
            from: Seconds::ZERO,
            until: forever(),
        }])
        .expect("valid plan")
    };
    let fabric_opts = |uplinks, policy| {
        SimOptions::default()
            .with_network(ccube_sim::NetworkModel::SwitchFabric(FabricSpec {
                radix: Some(4),
                uplinks,
                spines: uplinks,
                uplink_policy: policy,
                ..FabricSpec::passthrough()
            }))
            .without_trace()
    };
    let one = fabric_opts(1, UplinkPolicy::Hash);
    let plan = outage(0, 0);
    let report = analyze_severance(&plan, &topo, &s, &e, &one);
    assert!(report
        .diagnostics()
        .iter()
        .any(|d| d.code == LintCode::FaultSevered));
    assert!(matches!(
        simulate_faulted(&topo, &s, &e, &one, &plan),
        Err(SimError::Unroutable { .. })
    ));

    let two = fabric_opts(2, UplinkPolicy::Failover);
    for slot in 0..2 {
        let plan = outage(0, slot);
        let report = analyze_severance(&plan, &topo, &s, &e, &two);
        assert!(
            report
                .diagnostics()
                .iter()
                .all(|d| d.code != LintCode::FaultSevered),
            "slot {slot}: {report}"
        );
        assert!(simulate_faulted(&topo, &s, &e, &two, &plan).is_ok());
    }
}
