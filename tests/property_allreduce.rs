//! Property-based tests over the whole stack: any rank count, chunk
//! count, tree shape and data must give a correct, in-order AllReduce.

use ccube::arrivals::ChunkArrivals;
use ccube::pipeline::chain_forward;
use ccube_collectives::cost::{k_opt, t_tree_phase, CostParams};
use ccube_collectives::verify::{check_allreduce, execute_steps, ChannelKeying};
use ccube_collectives::{
    ring_allreduce, tree_allreduce, BinaryTree, Chunking, DoubleBinaryTree, Overlap,
};
use ccube_runtime::{RingAllReduceRuntime, TreeAllReduceRuntime};
use ccube_topology::{Bandwidth, ByteSize, Seconds};
use proptest::prelude::*;

fn overlap_strategy() -> impl Strategy<Value = Overlap> {
    prop_oneof![Just(Overlap::None), Just(Overlap::ReductionBroadcast)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_schedules_are_correct(p in 2usize..24, kib in 1u64..512) {
        let s = ring_allreduce(p, ByteSize::kib(kib));
        check_allreduce(&s).unwrap();
    }

    #[test]
    fn single_tree_schedules_are_correct(
        p in 2usize..24,
        k in 1usize..20,
        overlap in overlap_strategy(),
    ) {
        let tree = BinaryTree::inorder(p).unwrap();
        let s = tree_allreduce(
            std::slice::from_ref(&tree),
            &Chunking::even(ByteSize::kib(64), k),
            overlap,
        );
        check_allreduce(&s).unwrap();
    }

    #[test]
    fn double_tree_schedules_are_correct_and_in_order(
        p in 2usize..20,
        k in 2usize..24,
        overlap in overlap_strategy(),
    ) {
        let dt = DoubleBinaryTree::new(p).unwrap();
        let s = tree_allreduce(dt.trees(), &Chunking::even(ByteSize::kib(128), k), overlap);
        check_allreduce(&s).unwrap();
        let report = execute_steps(&s, ChannelKeying::PerTree).unwrap();
        prop_assert!(report.chunks_in_order(2));
    }

    #[test]
    fn overlap_never_adds_steps(p in 2usize..16, k in 1usize..16) {
        let tree = BinaryTree::inorder(p).unwrap();
        let chunking = Chunking::even(ByteSize::kib(64), k);
        let b = tree_allreduce(std::slice::from_ref(&tree), &chunking, Overlap::None);
        let o = tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        );
        let rb = execute_steps(&b, ChannelKeying::PerTree).unwrap();
        let ro = execute_steps(&o, ChannelKeying::PerTree).unwrap();
        prop_assert!(ro.num_steps <= rb.num_steps);
        prop_assert!(ro.turnaround_step() <= rb.turnaround_step());
    }

    #[test]
    fn k_opt_is_a_local_minimum(
        p in 2usize..512,
        mib in 1u64..256,
        alpha_us in 1u64..20,
        gbps in 1u64..100,
    ) {
        let params = CostParams::new(
            Seconds::from_micros(alpha_us as f64),
            Bandwidth::gb_per_sec(gbps as f64),
        );
        let n = ByteSize::mib(mib);
        let k = k_opt(&params, p, n);
        let t = t_tree_phase(&params, p, n, k);
        if k > 1 {
            prop_assert!(t <= t_tree_phase(&params, p, n, k - 1));
        }
        prop_assert!(t <= t_tree_phase(&params, p, n, k + 1));
    }

    #[test]
    fn threaded_tree_matches_serial_sum(
        p in 2usize..9,
        k in 1usize..12,
        n in 1usize..120,
        overlap in overlap_strategy(),
        seed in 0u64..1000,
    ) {
        let tree = BinaryTree::inorder(p).unwrap();
        let rt = TreeAllReduceRuntime::new(vec![tree], overlap, k);
        let inputs: Vec<Vec<f32>> = (0..p)
            .map(|r| {
                (0..n)
                    .map(|i| (((r as u64 * 17 + i as u64 * 3 + seed) % 21) as f32) - 10.0)
                    .collect()
            })
            .collect();
        let mut expect = vec![0f32; n];
        for buf in &inputs {
            for (e, x) in expect.iter_mut().zip(buf) {
                *e += x;
            }
        }
        let out = rt.run(inputs).unwrap();
        for o in out {
            prop_assert_eq!(&o, &expect);
        }
    }

    #[test]
    fn threaded_ring_matches_serial_sum(
        p in 2usize..9,
        n in 1usize..120,
        seed in 0u64..1000,
    ) {
        let rt = RingAllReduceRuntime::new(p);
        let inputs: Vec<Vec<f32>> = (0..p)
            .map(|r| {
                (0..n)
                    .map(|i| (((r as u64 * 11 + i as u64 * 7 + seed) % 17) as f32) - 8.0)
                    .collect()
            })
            .collect();
        let mut expect = vec![0f32; n];
        for buf in &inputs {
            for (e, x) in expect.iter_mut().zip(buf) {
                *e += x;
            }
        }
        let out = rt.run(inputs).unwrap();
        for o in out {
            prop_assert_eq!(&o, &expect);
        }
    }

    #[test]
    fn chained_forward_invariants(
        fwd_ms in proptest::collection::vec(1u64..20, 1..12),
        arrivals_ms in proptest::collection::vec(0u64..100, 1..12),
    ) {
        let layers = fwd_ms.len().min(arrivals_ms.len());
        let fwd: Vec<Seconds> = fwd_ms[..layers]
            .iter()
            .map(|&m| Seconds::from_millis(m as f64))
            .collect();
        let mut times: Vec<Seconds> = arrivals_ms[..layers]
            .iter()
            .map(|&m| Seconds::from_millis(m as f64))
            .collect();
        times.sort();
        let arrivals = ChunkArrivals::new(times);
        let table: Vec<usize> = (1..=layers).collect();
        let chain = chain_forward(&fwd, &table, &arrivals);

        // starts are ordered and never precede the layer's gradients
        #[allow(clippy::needless_range_loop)] // parallel-array indexing
        for i in 0..layers {
            prop_assert!(chain.ends[i] >= chain.starts[i]);
            prop_assert!(chain.starts[i] >= arrivals.ready_after(table[i]));
            if i > 0 {
                prop_assert!(chain.starts[i] >= chain.ends[i - 1]);
            }
        }
        // finish >= both lower bounds
        let total_fwd = fwd.iter().fold(Seconds::ZERO, |a, &b| a + b);
        prop_assert!(chain.finish >= total_fwd);
        prop_assert!(chain.finish >= arrivals.last());
        // finish == total fwd + total bubbles + first-layer wait
        let expect = total_fwd + chain.total_bubble();
        prop_assert!((chain.finish.as_secs_f64() - expect.as_secs_f64()).abs() < 1e-12);
    }
}
