//! Headline-claims test: the numbers the paper's abstract and evaluation
//! call out must hold (as shapes/bands) for our reproduction.

use ccube::experiments::{fig12, fig13, fig14};
use ccube::pipeline::Mode;
use ccube_topology::ByteSize;

#[test]
fn abstract_claim_up_to_61_percent_overall_improvement() {
    // "C-Cube ... achieve up to 61% improvement in overall performance,
    // compared to baseline two-tree algorithm." Our substrate differs, so
    // accept a generous band around 61% for the maximum.
    let rows = fig13::run();
    let mut max_improvement: f64 = 0.0;
    for net in ["zfnet", "vgg16", "resnet50"] {
        for batch in [16usize, 32, 64, 128] {
            for bw in ["low", "high"] {
                let b = fig13::lookup(&rows, net, batch, bw, Mode::Baseline);
                let cc = fig13::lookup(&rows, net, batch, bw, Mode::CCube);
                max_improvement = max_improvement.max(cc / b - 1.0);
            }
        }
    }
    assert!(
        (0.4..1.2).contains(&max_improvement),
        "max CC-over-B improvement {max_improvement:.3}"
    );
}

#[test]
fn evaluation_claim_c1_communication_gain() {
    // "The overlapping tree algorithm (C1) always exceeds the performance
    // of the baseline tree algorithm (B) by 75% for 64MB data size and up
    // to 80% for larger data size."
    let rows = fig12::run_with(&[ByteSize::mib(64), ByteSize::mib(256)]);
    for row in &rows {
        assert!(
            row.improvement_sim > 0.55,
            "N={}: {:.3}",
            row.n,
            row.improvement_sim
        );
    }
}

#[test]
fn evaluation_claim_c1_average_overall_gain() {
    // "C1 provides 10% performance improvement on average ... compared
    // to B" — C1 alone is a modest overall win.
    let rows = fig13::run();
    let mut gains = Vec::new();
    for net in ["zfnet", "vgg16", "resnet50"] {
        for batch in [16usize, 32, 64, 128] {
            for bw in ["low", "high"] {
                let b = fig13::lookup(&rows, net, batch, bw, Mode::Baseline);
                let c1 = fig13::lookup(&rows, net, batch, bw, Mode::OverlappedTree);
                gains.push(c1 / b - 1.0);
            }
        }
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!((0.02..0.45).contains(&avg), "average C1 gain {avg:.3}");
    // and every cell is a non-loss
    assert!(gains.iter().all(|&g| g >= -1e-9));
}

#[test]
fn evaluation_claim_turnaround_speedup_scale_out() {
    // Fig. 14(b): "29x improvement on average (and up to 69x)" for large
    // messages. Shape: the speedup must reach tens of x at 64 MiB.
    let rows = fig14::run_with(&[64, 128], &[ByteSize::mib(64)]);
    let max = rows
        .iter()
        .map(|r| r.turnaround_speedup)
        .fold(0.0, f64::max);
    assert!(max > 15.0, "max turnaround speedup {max:.1}");
}

#[test]
fn evaluation_claim_scale_out_crossover() {
    // Fig. 14(a): the tree-based C1 overtakes the ring as node count
    // grows (here shown for 1 MiB messages, whose crossover falls inside
    // a quick sweep; 64 MiB crosses over beyond P=512).
    let rows = fig14::run_with(&[4, 128], &[ByteSize::mib(1)]);
    let small = rows.iter().find(|r| r.p == 4).unwrap().c1_over_ring;
    let large = rows.iter().find(|r| r.p == 128).unwrap().c1_over_ring;
    assert!(large > small);
    assert!(small < 1.0, "ring should win at small scale ({small:.2})");
    assert!(large > 1.0, "C1 must beat the ring at scale ({large:.2})");
}
