//! End-to-end C-Cube chaining: the threaded runtime executes the
//! overlapped double tree with gradient queuing for a real network's
//! layer-chunk table, and the result must be numerically exact with
//! layers gated correctly.

use ccube::pipeline::TrainingPipeline;
use ccube_collectives::{DoubleBinaryTree, Overlap};
use ccube_dnn::{resnet50, vgg16};
use ccube_runtime::{ChainedRun, TreeAllReduceRuntime};

fn integer_inputs(p: usize, n: usize) -> Vec<Vec<f32>> {
    (0..p)
        .map(|r| {
            (0..n)
                .map(|i| ((r * 13 + i * 5) % 9) as f32 - 4.0)
                .collect()
        })
        .collect()
}

fn reference(inputs: &[Vec<f32>]) -> Vec<f32> {
    let mut out = vec![0f32; inputs[0].len()];
    for buf in inputs {
        for (o, x) in out.iter_mut().zip(buf) {
            *o += x;
        }
    }
    out
}

fn chained_net_run(net: &ccube_dnn::NetworkModel) {
    let pipeline = TrainingPipeline::dgx1(net, 64);
    let num_chunks = pipeline.num_chunks();
    let table = pipeline.layer_chunk_table();
    assert_eq!(*table.last().unwrap(), num_chunks);

    let p = 8;
    let inputs = integer_inputs(p, 16 * num_chunks);
    let expect = reference(&inputs);

    let dt = DoubleBinaryTree::new(p).unwrap();
    let rt =
        TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, num_chunks);
    let chained = ChainedRun::new(rt, table.clone()).unwrap();
    let (outputs, events) = chained.run(inputs, |_, _| {}).unwrap();

    for (r, out) in outputs.iter().enumerate() {
        assert_eq!(out, &expect, "rank {r}");
    }
    for rank_events in &events {
        assert_eq!(rank_events.len(), table.len());
        // layers in order, gates never open early
        for (i, e) in rank_events.iter().enumerate() {
            assert_eq!(e.layer, i);
            assert!(e.chunks_available >= table[i] as i64);
        }
    }
}

#[test]
fn resnet50_table_chains_correctly() {
    chained_net_run(&resnet50());
}

#[test]
fn vgg16_table_chains_correctly() {
    chained_net_run(&vgg16());
}

#[test]
fn early_layers_start_before_the_collective_finishes() {
    // The point of C-Cube: with the CNN (Case 1) shape, the first layers'
    // gates open while later chunks are still in flight.
    let net = resnet50();
    let pipeline = TrainingPipeline::dgx1(&net, 64);
    let num_chunks = pipeline.num_chunks();
    let table = pipeline.layer_chunk_table();

    let p = 8;
    let inputs = integer_inputs(p, 8 * num_chunks);
    let dt = DoubleBinaryTree::new(p).unwrap();
    let rt =
        TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, num_chunks);
    let chained = ChainedRun::new(rt, table).unwrap();
    let (_, events) = chained.run(inputs, |_, _| {}).unwrap();

    // ResNet-50's first layers need only a handful of chunks; at least
    // one rank must have observed a gate opening before all chunks were
    // enqueued (scheduling noise can hide it on some ranks, not on all).
    let early_somewhere = events.iter().any(|rank_events| {
        rank_events
            .iter()
            .any(|e| e.chunks_available < num_chunks as i64)
    });
    assert!(
        early_somewhere,
        "no layer anywhere chained ahead of the collective"
    );
}

#[test]
fn baseline_chaining_still_produces_correct_results() {
    // C2 (chaining over the non-overlapped tree) trades turnaround for
    // simplicity but must be just as correct.
    let net = resnet50();
    let pipeline = TrainingPipeline::dgx1(&net, 64);
    let num_chunks = pipeline.num_chunks();
    let table = pipeline.layer_chunk_table();

    let p = 8;
    let inputs = integer_inputs(p, 4 * num_chunks);
    let expect = reference(&inputs);
    let dt = DoubleBinaryTree::new(p).unwrap();
    let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::None, num_chunks);
    let chained = ChainedRun::new(rt, table).unwrap();
    let (outputs, _) = chained.run(inputs, |_, _| {}).unwrap();
    for out in outputs {
        assert_eq!(out, expect);
    }
}
