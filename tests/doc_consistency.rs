//! Help/docs drift audit: every flag and subcommand the `ccube` binary
//! actually parses must be documented — in the binary's own `USAGE`
//! text, and in README.md's subcommand table.
//!
//! The binary's source is audited textually (`include_str!`), so adding
//! a `split_flag(.., "--new-flag")` call without touching the help text
//! fails this test instead of shipping stale docs — the drift this PR
//! fixed (the pre-seed `trace --diff` wording) stays fixed.

/// The CLI source; `USAGE` is extracted out of it below.
const CCUBE_SRC: &str = include_str!("../crates/core/src/bin/ccube.rs");
const README: &str = include_str!("../README.md");
const EXPERIMENTS: &str = include_str!("../EXPERIMENTS.md");

/// The `USAGE` string constant, as written in the source (escape
/// sequences left verbatim — good enough for substring audits).
fn usage_text() -> &'static str {
    let start = CCUBE_SRC
        .find("const USAGE: &str = \"")
        .expect("ccube.rs defines const USAGE");
    let rest = &CCUBE_SRC[start..];
    let open = rest.find('"').unwrap() + 1;
    let close = rest.find("\";").expect("USAGE terminates");
    &rest[open..close]
}

/// Every quoted `"--flag"` literal the source compares arguments
/// against — i.e. the flags the binary genuinely parses.
fn parsed_flags() -> Vec<String> {
    let mut flags = std::collections::BTreeSet::new();
    let mut rest = CCUBE_SRC;
    while let Some(pos) = rest.find("\"--") {
        rest = &rest[pos + 1..];
        let end = rest.find('"').expect("string literal closes");
        let flag = rest[..end].trim_end_matches('=').to_string();
        // Keep only flag-shaped literals (`--lower-case`): error-message
        // strings that merely *mention* a flag start the same way but
        // carry spaces or braces. `"--"` alone is the separator test.
        // `--help` prints the help — documenting it inside itself would
        // be circular, so it is exempt.
        if flag.len() > 2
            && flag != "--help"
            && flag[2..]
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-')
        {
            flags.insert(flag);
        }
        rest = &rest[end..];
    }
    // `--threads N` is parsed by `ccube_sim::threads_from_args`, outside
    // this source file, but is user-facing all the same.
    flags.insert("--threads".to_string());
    flags.into_iter().collect()
}

/// The subcommand names dispatched in `main`'s match.
fn subcommands() -> Vec<&'static str> {
    let mut out = Vec::new();
    for line in CCUBE_SRC.lines() {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, tail)) = rest.split_once('"') else {
            continue;
        };
        if tail.trim_start().starts_with("=> cmd_") {
            out.push(name);
        }
    }
    assert!(out.len() >= 10, "subcommand match arms found: {out:?}");
    out
}

#[test]
fn every_parsed_flag_is_in_usage() {
    let usage = usage_text();
    for flag in parsed_flags() {
        assert!(
            usage.contains(&flag),
            "{flag} is parsed by ccube but missing from USAGE"
        );
    }
}

#[test]
fn every_parsed_flag_is_in_readme() {
    for flag in parsed_flags() {
        assert!(
            README.contains(&flag),
            "{flag} is parsed by ccube but missing from README.md"
        );
    }
}

#[test]
fn every_subcommand_is_in_usage_and_readme() {
    let usage = usage_text();
    for cmd in subcommands() {
        assert!(usage.contains(cmd), "subcommand {cmd} missing from USAGE");
        assert!(
            README.contains(&format!("`ccube {cmd}")) || README.contains(&format!("ccube {cmd}")),
            "subcommand {cmd} missing from README.md"
        );
    }
}

#[test]
fn usage_flags_all_exist() {
    // The reverse audit: a flag advertised in USAGE must actually be
    // parsed somewhere — stale help lines fail here.
    let parsed = parsed_flags();
    for word in usage_text().split_whitespace() {
        let word = word.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '-');
        if word.starts_with("--") {
            assert!(
                parsed.iter().any(|p| p == word),
                "USAGE advertises {word} but ccube never parses it"
            );
        }
    }
}

#[test]
fn diff_docs_mention_live_seeds() {
    // The PR 8 drift this test exists for: `trace --diff` accepts live
    // seeds, not just CSV paths, and every doc surface must say so.
    let usage = usage_text();
    let diff_line = usage
        .lines()
        .skip_while(|l| !l.contains("--diff"))
        .take(3)
        .collect::<Vec<_>>()
        .join(" ");
    assert!(
        diff_line.contains("seed"),
        "USAGE's trace --diff lines must mention seeds: {diff_line:?}"
    );
    for (name, doc) in [("README.md", README), ("EXPERIMENTS.md", EXPERIMENTS)] {
        let around = doc
            .split("--diff")
            .skip(1)
            .any(|after| after[..after.len().min(200)].contains("seed"));
        assert!(
            around,
            "{name} must document that trace --diff sides can be live-run seeds"
        );
    }
}

#[test]
fn html_viewer_is_documented_everywhere() {
    for (name, doc) in [
        ("USAGE", usage_text()),
        ("README.md", README),
        ("EXPERIMENTS.md", EXPERIMENTS),
    ] {
        assert!(
            doc.contains("--html"),
            "{name} must document the --html viewer output"
        );
    }
}
