//! Property tests over the substrates added beyond the core AllReduce
//! path: collective primitives, multi-ring schedules, torus topologies,
//! the α/β fitter, and the timeline/pipeline agreement.

use ccube::pipeline::{Mode, TrainingPipeline};
use ccube::timeline::TimelineSim;
use ccube_collectives::cost::{fit_params, CostParams};
use ccube_collectives::{primitives, ring_allreduce_multi, verify, BinaryTree, Chunking, Rank};
use ccube_topology::{torus2d, Bandwidth, ByteSize, GpuId, Router, Seconds};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tree_broadcast_is_correct(p in 2usize..24, k in 1usize..16) {
        let tree = BinaryTree::inorder(p).unwrap();
        let s = primitives::tree_broadcast(
            std::slice::from_ref(&tree),
            &Chunking::even(ByteSize::kib(64), k),
        );
        verify::check_broadcast(&s).unwrap();
    }

    #[test]
    fn tree_reduce_is_correct(p in 2usize..24, k in 1usize..16) {
        let tree = BinaryTree::inorder(p).unwrap();
        let s = primitives::tree_reduce(
            std::slice::from_ref(&tree),
            &Chunking::even(ByteSize::kib(64), k),
        );
        verify::check_reduce(&s, &[tree.root()]).unwrap();
    }

    #[test]
    fn ring_phases_are_correct(p in 2usize..20, kib in 1u64..256) {
        let n = ByteSize::kib(kib);
        verify::check_reduce_scatter(&primitives::ring_reduce_scatter(p, n)).unwrap();
        verify::check_all_gather(&primitives::ring_all_gather(p, n)).unwrap();
    }

    #[test]
    fn multi_ring_with_random_rotations_is_correct(
        p in 2usize..12,
        rings in 1usize..4,
        rot in 0usize..12,
    ) {
        // Ring orders that are rotations/reversals of the identity are
        // always valid permutations.
        let orders: Vec<Vec<Rank>> = (0..rings)
            .map(|r| {
                let mut order: Vec<Rank> =
                    (0..p).map(|i| Rank(((i + rot + r) % p) as u32)).collect();
                if r % 2 == 1 {
                    order.reverse();
                }
                order
            })
            .collect();
        let s = ring_allreduce_multi(ByteSize::kib(128), &orders);
        verify::check_allreduce(&s).unwrap();
    }

    #[test]
    fn torus_neighbors_route_directly(rows in 2usize..6, cols in 2usize..6) {
        let topo = torus2d(rows, cols);
        let router = Router::without_host_fallback(&topo);
        for r in 0..rows {
            for c in 0..cols {
                let a = GpuId((r * cols + c) as u32);
                let right = GpuId((r * cols + (c + 1) % cols) as u32);
                if a != right {
                    let route = router.route(a, right).unwrap();
                    prop_assert!(!route.is_detour());
                }
            }
        }
    }

    #[test]
    fn fit_inverts_step_time(
        alpha_us in 1u64..50,
        gbps in 1u64..200,
    ) {
        let truth = CostParams::new(
            Seconds::from_micros(alpha_us as f64),
            Bandwidth::gb_per_sec(gbps as f64),
        );
        let samples: Vec<(ByteSize, Seconds)> = [16u64, 64, 256, 1024, 4096]
            .iter()
            .map(|&k| {
                let b = ByteSize::kib(k);
                (b, truth.step_time(b))
            })
            .collect();
        let fitted = fit_params(&samples).unwrap();
        let rel_bw = (fitted.bandwidth().as_gb_per_sec() - gbps as f64).abs() / gbps as f64;
        prop_assert!(rel_bw < 1e-6, "bw off by {rel_bw}");
        let a_err = (fitted.alpha().as_micros() - alpha_us as f64).abs();
        prop_assert!(a_err < 1e-6, "alpha off by {a_err} us");
    }

    #[test]
    fn timeline_steady_state_equals_closed_form(
        batch in prop::sample::select(vec![16usize, 32, 64, 128]),
        mode in prop::sample::select(vec![
            Mode::Baseline,
            Mode::OverlappedTree,
            Mode::Chained,
            Mode::CCube,
            Mode::Ring,
        ]),
    ) {
        let pipeline = TrainingPipeline::dgx1(&ccube_dnn::zfnet(), batch);
        let report = TimelineSim::new(&pipeline, mode, 8).run(4);
        let steady = report.steady_iteration_time().as_secs_f64();
        let closed = pipeline.iteration(mode).t_iter.as_secs_f64();
        prop_assert!(
            (steady - closed).abs() / closed < 0.01,
            "{mode} b={batch}: {steady} vs {closed}"
        );
    }

    #[test]
    fn gradient_queue_requirements_partition_chunks(
        num_trees in 1usize..4,
        table_step in 1usize..5,
        layers in 1usize..10,
    ) {
        use ccube_runtime::GradientQueue;
        let table: Vec<usize> = (1..=layers).map(|l| l * table_step).collect();
        let q = GradientQueue::new(num_trees, &table).unwrap();
        for (l, &upper) in table.iter().enumerate() {
            let total: i64 = (0..num_trees).map(|t| q.required(l, t)).sum();
            prop_assert_eq!(total, upper as i64, "layer {} needs {} chunks", l, upper);
        }
    }
}
