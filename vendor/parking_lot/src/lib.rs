//! Offline vendored shim for the subset of `parking_lot` this workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly (no
//! poisoning `Result`). Backed by `std::sync::Mutex`; a poisoned lock is
//! recovered transparently, matching parking_lot's semantics of never
//! poisoning.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
