//! Offline vendored mini-criterion.
//!
//! Provides the `criterion` API surface this workspace's benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple wall-clock timer. Each benchmark runs `sample_size`
//! samples of one iteration and prints the median, so `cargo bench`
//! produces comparable numbers without the real statistics engine.
//!
//! `cargo test` runs each benchmark once (test mode), mirroring
//! criterion's behavior of smoke-testing benches under `--test`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// The timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration times, filled by [`Bencher::iter`].
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.sort();
        self.times[self.times.len() / 2]
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    let med = b.median();
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            "  {:.2} MiB/s",
            n as f64 / med.as_secs_f64().max(1e-12) / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => {
            format!("  {:.0} elem/s", n as f64 / med.as_secs_f64().max(1e-12))
        }
    });
    println!(
        "bench {label:<50} median {:>12.3?}{}",
        med,
        rate.unwrap_or_default()
    );
}

/// `cargo bench` invokes bench binaries with a `--bench` argument while
/// `cargo test` runs them bare; like real criterion, a bare run is a
/// smoke test and records a single sample per bench.
fn effective_samples(configured: usize) -> usize {
    if std::env::args().any(|a| a == "--bench") {
        configured.max(1)
    } else {
        1
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Configures the driver from CLI args (no-op in the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(id, effective_samples(self.sample_size), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Finalizes the run (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            effective_samples(self.sample_size),
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            effective_samples(self.sample_size),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring criterion's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("demo_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("demo_group");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7u32));
        g.finish();
    }

    criterion_group! {
        name = demo_benches;
        config = Criterion::default().sample_size(3);
        targets = demo
    }

    #[test]
    fn harness_runs_groups() {
        demo_benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
