//! Offline vendored mini-proptest.
//!
//! Implements the subset of the `proptest` API this workspace's property
//! tests use — integer-range strategies, [`Just`], `prop_oneof!`,
//! `proptest::collection::vec`, `prop::sample::select`, and the
//! [`proptest!`] macro — over a deterministic splitmix64 generator seeded
//! from the test's module path and name. Every run explores the same case
//! sequence, so failures reproduce exactly; there is no shrinking.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic test RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from an arbitrary string (e.g. the test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generation strategy: how to draw one value of `Self::Value`.
pub trait Strategy {
    /// The type of value the strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

/// Uniform choice between boxed alternatives — what `prop_oneof!` builds.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Yields vectors of values drawn from `element`, with lengths in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// A strategy choosing uniformly from a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    /// Chooses one of `values` uniformly; `values` must be non-empty.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

/// Test-runner configuration (`proptest::test_runner`).
pub mod test_runner {
    /// How many cases each property test runs.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The glob-import prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, Strategy};

    /// The `prop::` module alias the real prelude exposes.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Uniformly picks one of several strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares deterministic property tests.
///
/// Supports the classic form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, y in 1u64..5) { assert!(x < 10 && y > 0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5u64..=5).sample(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("same-name");
        let mut b = crate::TestRng::deterministic("same-name");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn union_and_select_cover_all_arms() {
        let mut rng = crate::TestRng::deterministic("union");
        let u = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
        let s = crate::sample::select(vec!["a", "b"]);
        let mut hit = (false, false);
        for _ in 0..100 {
            match s.sample(&mut rng) {
                "a" => hit.0 = true,
                _ => hit.1 = true,
            }
        }
        assert!(hit.0 && hit.1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0u64..10, 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }
}
